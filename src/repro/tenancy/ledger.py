"""The persistent per-tenant privacy-budget ledger.

The facade's :class:`~repro.accounting.budget.BudgetOdometer` accounts for
epsilon inside one process and vanishes with it.  A :class:`BudgetLedger` is
its durable, multi-process counterpart: an **append-only JSON journal**
(one record per line) under a service root that any number of concurrent
brokers share, so budget enforcement survives restarts and applies across
the whole fleet.

Concurrency follows the service queue's discipline -- every mutation happens
under an exclusive lock acquired by an atomic filesystem operation
(``O_CREAT | O_EXCL``, the create-flavoured sibling of
:class:`~repro.service.queue.FileJobQueue`'s claim rename; a crashed
holder's stale lock is broken by an atomic rename, so exactly one breaker
wins).  Under the lock a writer first replays any records other processes
appended, then checks, then appends its own -- check-then-append is race-free
because nobody else can append in between.

Crash recovery is the journal's reason to be append-only: a record is one
``os.write`` of one ``\\n``-terminated line, so a crash mid-append leaves at
most one trailing partial line.  Replay consumes only complete lines (and
skips lines that fail to parse), and the next locked writer repairs the tail
by terminating the partial line before appending -- the partial record is
permanently ignored, never half-applied.

Record semantics (amounts are epsilon):

* ``grant``  -- set a tenant's **total** budget (absolute, not a delta);
* ``charge`` -- consume budget (a job's worst-case reservation at submit);
* ``refund`` -- return budget (an aborted submission);
* ``settle`` -- return a job's unused reservation exactly once: replay keeps
  the set of settled job ids, so the refund of ``reserved - consumed`` is
  idempotent however many times a client fetches the result.

A tenant with no ``grant`` record is **unbounded**: charges are recorded
(so operators still see per-tenant consumption in the metrics surface) but
never refused.  That keeps single-tenant deployments zero-configuration;
enforcement begins the moment an operator grants a budget -- against the
tenant's *lifetime* consumption, including what it metered while
unbudgeted (see :meth:`BudgetLedger.grant`).

Replay stays bounded on long-lived roots: past ``COMPACT_EVERY`` records a
locked writer folds the journal into a single ``snapshot`` record
(atomically swapped in with ``os.replace``); readers detect the swap by
the journal's changed inode and restart from the snapshot.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.accounting.budget import BudgetExceededError

__all__ = ["BudgetLedger", "LedgerError", "LedgerLockTimeout"]

#: Tolerance of the overdraft check (mirrors BudgetOdometer.can_charge).
_EPS = 1e-12


class LedgerError(RuntimeError):
    """Raised on ledger-protocol violations (bad tenants, bad amounts)."""


class LedgerLockTimeout(LedgerError):
    """Raised when the journal lock cannot be acquired in time."""


def _check_tenant(tenant: str) -> str:
    if not isinstance(tenant, str) or not tenant or len(tenant) > 200:
        raise LedgerError(f"invalid tenant name {tenant!r}")
    if any(ch in tenant for ch in "/\\\n\r\t ") or tenant.startswith("."):
        raise LedgerError(f"invalid tenant name {tenant!r}")
    return tenant


#: Byte prefix of the generation marker a compacted journal starts with
#: (json.dumps with sorted keys puts "gen" first); the 32 hex chars that
#: follow are the generation id.
_GEN_PREFIX = b'{"gen": "'


def _write_all(fd: int, payload: bytes) -> None:
    """``os.write`` until every byte lands: a short write that went
    unnoticed would tear (or drop) a journal record while the mutation
    reports success -- a silently unenforced grant or unrecorded charge.
    A partial write followed by an exception is the torn-tail case replay
    and repair already handle."""
    view = memoryview(payload)
    while view:
        view = view[os.write(fd, view):]


def _check_amount(amount, kind: str) -> float:
    amount = float(amount)
    if not amount >= 0.0 or amount != amount or amount == float("inf"):
        raise LedgerError(f"{kind} amount must be finite and >= 0, got {amount}")
    return amount


class BudgetLedger:
    """Durable per-tenant epsilon accounting over one journal file.

    Parameters
    ----------
    directory:
        Ledger directory (created if missing); holds ``ledger.jsonl`` (the
        journal) and ``ledger.lock`` (the writers' mutual exclusion).
    lock_timeout:
        Seconds to wait for the journal lock before
        :class:`LedgerLockTimeout`.
    stale_lock_seconds:
        A lock file older than this belongs to a crashed writer and is
        broken (mutations are a replay + one append -- milliseconds -- so
        the default is generous).
    """

    #: Journal records a locked writer tolerates before compacting the
    #: journal into one snapshot record: keeps replay (hence first-mutation
    #: latency of every fresh process, e.g. each CLI invocation) bounded on
    #: long-lived roots instead of growing with total jobs ever submitted.
    COMPACT_EVERY = 10_000

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        lock_timeout: float = 10.0,
        stale_lock_seconds: float = 30.0,
        injector=None,
    ) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            # A read-only root (a snapshot an operator is inspecting, a
            # pre-tenancy service directory): reads degrade to an empty
            # ledger; the first mutation fails with the real error.
            pass
        self.journal_path = self.directory / "ledger.jsonl"
        self._lock_path = self.directory / "ledger.lock"
        self.lock_timeout = float(lock_timeout)
        self.stale_lock_seconds = float(stale_lock_seconds)
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`):
        #: appends tear mid-record and lock releases are skipped (a crashed
        #: holder) when the injector says so.  None in production.
        self._injector = injector
        self._mutex = threading.Lock()  # thread-safety within one process
        self._offset = 0  # journal bytes already replayed (complete lines)
        self._journal_gen: Optional[str] = None  # compaction detection
        self._records = 0  # records behind the current offset
        self._totals: Dict[str, float] = {}
        self._spent: Dict[str, float] = {}
        self._charged: Dict[str, float] = {}  # gross charges, refunds ignored
        self._settled: Set[str] = set()

    def _reset_state(self) -> None:
        self._offset = 0
        self._records = 0
        self._totals = {}
        self._spent = {}
        self._charged = {}
        self._settled = set()

    # -- journal replay -----------------------------------------------------

    def _apply(self, record: dict) -> None:
        if record.get("op") == "snapshot":
            # A compaction summary: the whole state up to this record.
            try:
                totals = {
                    str(t): float(v) for t, v in record["totals"].items()
                }
                spent = {str(t): float(v) for t, v in record["spent"].items()}
                charged = {
                    str(t): float(v) for t, v in record["charged"].items()
                }
                settled = {str(j) for j in record["settled"]}
            except (KeyError, TypeError, ValueError, AttributeError):
                return  # malformed snapshot: skip, never half-apply
            self._totals, self._spent = totals, spent
            self._charged, self._settled = charged, settled
            return
        try:
            op = record["op"]
            tenant = record["tenant"]
            amount = float(record.get("epsilon", 0.0))
        except (KeyError, TypeError, ValueError):
            return  # malformed record: skip, never half-apply
        if op == "grant":
            self._totals[tenant] = amount
        elif op == "charge":
            self._spent[tenant] = self._spent.get(tenant, 0.0) + amount
            self._charged[tenant] = self._charged.get(tenant, 0.0) + amount
        elif op == "refund":
            # Floor at zero: an over-refund (an operator repairing twice, a
            # refund of a reservation that already settled) must not bank
            # negative consumption that would inflate remaining() past the
            # grant and over-admit later jobs.
            self._spent[tenant] = max(
                0.0, self._spent.get(tenant, 0.0) - amount
            )
        elif op == "settle":
            job_id = record.get("job_id")
            if job_id is not None:
                if job_id in self._settled:
                    return  # duplicate settle records are inert on replay
                self._settled.add(job_id)
            self._spent[tenant] = max(
                0.0, self._spent.get(tenant, 0.0) - amount
            )
        # Unknown ops are skipped: a newer writer's records must not wedge
        # an older reader's replay.

    def _replay(self) -> None:
        """Consume complete journal lines appended since the last replay.

        A trailing line without its ``\\n`` terminator (a writer crashed
        mid-append, or -- outside the lock -- is appending right now) is
        left unconsumed: the offset only ever advances past complete lines,
        so a partial record is never applied.  A compacted journal (the
        file was atomically replaced with a snapshot) is detected by the
        generation marker compaction writes as the file's first line --
        read under the same descriptor as the tail, so marker and content
        always belong to the same file version (an inode comparison would
        not do: filesystems reuse the old journal's inode for the new file
        immediately, which a live reader would mistake for "unchanged" and
        keep enforcing stale budgets from a stale offset).  A size below
        the offset is caught as a belt-and-braces reset too.
        """
        try:
            journal = open(self.journal_path, "rb")
        except OSError:
            return  # no journal yet: empty ledger
        with journal:
            head = journal.read(len(_GEN_PREFIX) + 32)
            generation = None
            if head.startswith(_GEN_PREFIX):
                generation = head[len(_GEN_PREFIX):].decode("ascii", "replace")
            stat = os.fstat(journal.fileno())
            if generation != self._journal_gen or stat.st_size < self._offset:
                self._reset_state()
                self._journal_gen = generation
            journal.seek(self._offset)
            tail = journal.read()
        end = tail.rfind(b"\n")
        if end < 0:
            return
        for line in tail[: end + 1].splitlines():
            self._records += 1
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue  # torn or corrupt line: permanently ignored
            if isinstance(record, dict):
                self._apply(record)
        self._offset += end + 1

    def refresh(self) -> None:
        """Fold in records other processes appended (read-only, no lock)."""
        with self._mutex:
            self._replay()

    # -- locking ------------------------------------------------------------

    def _acquire_lock(self) -> None:
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                self._break_stale_lock()
                if time.monotonic() >= deadline:
                    raise LedgerLockTimeout(
                        f"could not lock {self.journal_path} within "
                        f"{self.lock_timeout}s (held by a concurrent broker? "
                        f"remove {self._lock_path} if its owner is gone)"
                    )
                time.sleep(0.002)
                continue
            # The stamp doubles as the ownership token: release only
            # unlinks a lock that still carries it, so a holder stalled
            # past the stale threshold (whose lock a breaker replaced)
            # cannot delete the *next* writer's lock on resume.
            self._lock_token = f"{os.getpid()}.{uuid.uuid4().hex}"
            try:
                _write_all(
                    fd, f"{self._lock_token} {time.time()}\n".encode("ascii")
                )
            except BaseException:
                # The stamp failed (e.g. ENOSPC) after the lock file was
                # created: take it down again, or every writer fleet-wide
                # stalls on a lock nobody holds until the stale break.
                os.close(fd)
                try:
                    os.unlink(self._lock_path)
                except OSError:
                    pass
                raise
            os.close(fd)
            return

    def _break_stale_lock(self) -> None:
        """Take a crashed writer's lock down; an atomic rename picks the one
        winner among racing breakers, exactly like a queue claim."""
        try:
            age = time.time() - self._lock_path.stat().st_mtime
        except OSError:
            return  # released meanwhile
        if age <= self.stale_lock_seconds:
            return
        doomed = self._lock_path.with_name(
            f".stale.{self._lock_path.name}.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(self._lock_path, doomed)
        except OSError:
            return  # another breaker (or the owner's release) won
        try:
            os.unlink(doomed)
        except OSError:
            pass

    def _release_lock(self) -> None:
        if self._injector is not None and self._injector.fire("stale-lock"):
            # A holder that crashed without releasing: the lock file stays
            # behind, and the next writer must wait out stale_lock_seconds
            # and break it (the _break_stale_lock rename path).
            return
        try:
            stamp = self._lock_path.read_text(encoding="ascii")
        except (OSError, UnicodeDecodeError):
            return  # already broken/released: nothing of ours to remove
        if not stamp.startswith(f"{getattr(self, '_lock_token', '')} "):
            return  # a breaker replaced our lock while we were stalled
        try:
            os.unlink(self._lock_path)
        except OSError:
            pass

    # -- appending ----------------------------------------------------------

    def _repair_tail(self) -> None:
        """Terminate a crashed writer's partial trailing line (lock held).

        Appending ``\\n`` turns the torn bytes into one complete line that
        fails to parse -- which replay skips -- instead of letting the next
        record concatenate onto it and corrupt both.
        """
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            return
        if size == 0 or size == self._offset:
            return
        with open(self.journal_path, "rb") as journal:
            journal.seek(size - 1)
            if journal.read(1) == b"\n":
                return
        fd = os.open(self.journal_path, os.O_WRONLY | os.O_APPEND)
        try:
            _write_all(fd, b"\n")
        finally:
            os.close(fd)

    def _check_lock_ownership(self) -> None:
        """Refuse to append under a lock a stale-break took from us.

        A holder stalled past ``stale_lock_seconds`` (VM pause, NFS stall)
        may have had its lock broken and re-acquired by another writer; its
        admission check is then outdated, and appending anyway could
        overdraft the tenant.  Re-reading the stamp immediately before the
        write shrinks that window from the whole stall to microseconds.
        """
        try:
            stamp = self._lock_path.read_text(encoding="ascii")
        except (OSError, UnicodeDecodeError):
            stamp = ""
        if not stamp.startswith(f"{getattr(self, '_lock_token', '')} "):
            raise LedgerError(
                "lost the ledger lock mid-mutation (this writer stalled "
                "past the stale-lock threshold and another broker broke "
                "the lock); the mutation was NOT recorded -- retry it"
            )

    def _append(self, record: dict) -> None:
        """Append one record (lock held) and fold it into the local state."""
        self._check_lock_ownership()
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if self._injector is not None and self._injector.torn_write(
            "torn-journal-write"
        ):
            # A writer crash mid-append: a partial line with no newline
            # lands on the journal tail.  The next locked writer's
            # _repair_tail terminates it; replay then skips the unparseable
            # line, so the mutation is permanently NOT recorded -- which is
            # exactly what the raise tells our caller.
            fd = os.open(
                self.journal_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT
            )
            try:
                _write_all(fd, line[: max(1, len(line) // 2)])
            finally:
                os.close(fd)
            raise OSError("injected torn journal append (writer died mid-record)")
        fd = os.open(
            self.journal_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT
        )
        try:
            _write_all(fd, line)
        finally:
            os.close(fd)
        # Replay our own line (plus the repair newline, if any): the offset
        # and the in-memory state stay exactly journal-consistent.
        self._replay()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Fold a long journal into one snapshot record (lock held).

        Replay cost -- paid in full by every fresh process's first locked
        mutation -- is proportional to journal length, so past
        ``COMPACT_EVERY`` records the fully-replayed state is written as a
        single ``snapshot`` line and atomically swapped in with
        ``os.replace``.  Concurrent readers holding offsets into the old
        file notice the inode change on their next replay and restart from
        the snapshot; a reader mid-read keeps the old file alive via its
        open descriptor, so nobody ever sees a torn journal.
        """
        if self._records <= self.COMPACT_EVERY:
            return
        generation = uuid.uuid4().hex
        marker = (
            json.dumps({"gen": generation, "op": "genmark"}, sort_keys=True)
            + "\n"
        ).encode("ascii")
        assert marker.startswith(_GEN_PREFIX)
        snapshot = {
            "op": "snapshot",
            "at": time.time(),
            "totals": self._totals,
            "spent": self._spent,
            "charged": self._charged,
            "settled": sorted(self._settled),
        }
        content = marker + (
            json.dumps(snapshot, sort_keys=True) + "\n"
        ).encode("utf-8")
        tmp = self.journal_path.with_name(
            f".compact.{self.journal_path.name}.{uuid.uuid4().hex}"
        )
        fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        try:
            _write_all(fd, content)
        except BaseException:
            os.close(fd)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.close(fd)
        os.replace(tmp, self.journal_path)
        self._offset = len(content)
        self._records = 2  # the marker and the snapshot
        self._journal_gen = generation

    def _record(self, op: str, tenant: str, amount: float, job_id=None) -> dict:
        record = {"op": op, "tenant": tenant, "epsilon": amount, "at": time.time()}
        if job_id is not None:
            record["job_id"] = str(job_id)
        return record

    class _Locked:
        def __init__(self, ledger: "BudgetLedger") -> None:
            self.ledger = ledger

        def __enter__(self):
            self.ledger._mutex.acquire()
            try:
                self.ledger._acquire_lock()
            except BaseException:
                self.ledger._mutex.release()
                raise
            try:
                self.ledger._repair_tail()
                self.ledger._replay()
            except BaseException:
                # A failed repair/replay (e.g. ENOSPC on the tail newline)
                # must release both locks, or every later ledger call in
                # this process deadlocks on the leaked mutex.
                self.ledger._release_lock()
                self.ledger._mutex.release()
                raise
            return self.ledger

        def __exit__(self, *exc_info):
            try:
                self.ledger._release_lock()
            finally:
                self.ledger._mutex.release()
            return False

    def _locked(self) -> "BudgetLedger._Locked":
        return BudgetLedger._Locked(self)

    # -- mutations ----------------------------------------------------------

    def grant(self, tenant: str, epsilon) -> None:
        """Set ``tenant``'s total budget (absolute; a re-grant replaces it).

        Consumption already metered while the tenant ran unbudgeted counts
        against the new grant -- released information does not un-release,
        so a grant is a cap on *lifetime* consumption, never a fresh
        allowance.  An operator who really does intend to forgive history
        refunds it explicitly (``tenant-budget <tenant> --refund <eps>``);
        check ``spent`` before granting a long-active tenant a budget
        smaller than what it has already consumed.
        """
        tenant = _check_tenant(tenant)
        epsilon = float(epsilon)
        if not epsilon > 0.0 or epsilon != epsilon or epsilon == float("inf"):
            raise LedgerError(
                f"granted budget must be finite and positive, got {epsilon}"
            )
        with self._locked():
            self._append(self._record("grant", tenant, epsilon))

    def charge(
        self, tenant: str, epsilon, *, job_id: Optional[str] = None
    ) -> None:
        """Consume budget, refusing overdrafts for budgeted tenants.

        Raises :class:`~repro.accounting.budget.BudgetExceededError` when the
        tenant has a granted budget and the charge does not fit -- the
        journal is never appended to, so a refused submission leaves no
        trace to refund.
        """
        tenant = _check_tenant(tenant)
        epsilon = _check_amount(epsilon, "charge")
        with self._locked():
            total = self._totals.get(tenant)
            if total is not None:
                spent = self._spent.get(tenant, 0.0)
                if spent + epsilon > total + _EPS:
                    raise BudgetExceededError(
                        f"tenant {tenant!r} has epsilon="
                        f"{max(0.0, total - spent):g} of {total:g} remaining "
                        f"but this request may consume up to {epsilon:g}"
                        + (f" (job {job_id!r})" if job_id else "")
                    )
            self._append(self._record("charge", tenant, epsilon, job_id))

    def refund(
        self, tenant: str, epsilon, *, job_id: Optional[str] = None
    ) -> None:
        """Return budget unconditionally (an aborted submission's reserve)."""
        tenant = _check_tenant(tenant)
        epsilon = _check_amount(epsilon, "refund")
        with self._locked():
            self._append(self._record("refund", tenant, epsilon, job_id))

    def settle(self, tenant: str, epsilon, *, job_id: str) -> bool:
        """Refund a job's unused reservation exactly once.

        Returns False (appending nothing) when ``job_id`` was already
        settled -- by this process or any other sharing the journal.
        """
        tenant = _check_tenant(tenant)
        epsilon = _check_amount(epsilon, "settle")
        job_id = str(job_id)
        with self._locked():
            if job_id in self._settled:
                return False
            self._append(self._record("settle", tenant, epsilon, job_id))
            return True

    # -- views --------------------------------------------------------------

    def has_budget(self, tenant: str) -> bool:
        """Whether ``tenant`` has a granted (hence enforced) budget."""
        self.refresh()
        return tenant in self._totals

    def total(self, tenant: str) -> Optional[float]:
        """The granted budget, or None for an unbounded tenant."""
        self.refresh()
        return self._totals.get(tenant)

    def spent(self, tenant: str) -> float:
        """Net consumption (charges minus refunds/settlements), floored at 0."""
        self.refresh()
        return max(0.0, self._spent.get(tenant, 0.0))

    def charged(self, tenant: str) -> float:
        """Gross epsilon ever charged (refunds do not subtract) -- the
        operator-metrics view of a tenant's traffic."""
        self.refresh()
        return self._charged.get(tenant, 0.0)

    def remaining(self, tenant: str) -> float:
        """Budget still available; ``inf`` for an unbounded tenant."""
        self.refresh()
        total = self._totals.get(tenant)
        if total is None:
            return float("inf")
        return max(0.0, total - self._spent.get(tenant, 0.0))

    def is_settled(self, job_id: str) -> bool:
        self.refresh()
        return str(job_id) in self._settled

    def tenants(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-tenant snapshot for the metrics surface (sorted by name)."""
        self.refresh()
        names = sorted(
            set(self._totals) | set(self._spent) | set(self._charged)
        )
        snapshot = {}
        for tenant in names:
            total = self._totals.get(tenant)
            spent = max(0.0, self._spent.get(tenant, 0.0))
            snapshot[tenant] = {
                "total": total,
                "spent": spent,
                "charged": self._charged.get(tenant, 0.0),
                "remaining": None if total is None else max(0.0, total - spent),
            }
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BudgetLedger({os.fspath(self.directory)!r})"
