"""The operator metrics surface: counters, gauges, and the root snapshot.

Three layers, from producer to consumer:

* **Workers** keep plain in-process counters (claims, completed tasks, cache
  hits/misses, retries, dead-letters, heartbeats, discarded tasks) and
  publish them with :func:`write_worker_metrics` -- one small JSON file per
  worker under ``<root>/metrics/``, atomically replaced after every
  processed task, so a fleet's counters survive worker restarts and need no
  metrics server.
* **Gauges** are derived, not stored: queue depth per state, jobs per
  lifecycle state, cache entry count/bytes and per-tenant budgets are all
  recomputed from the service root's own files, exactly like
  :meth:`Broker.status` derives job state -- any reader of the root computes
  the same answer.
* :func:`collect_metrics` joins both into one snapshot dict and
  :func:`render_metrics` formats it for the ``metrics`` CLI verb::

      python -m repro.evaluation.cli metrics --root ./svc

Counter files are written with the same atomic-replace discipline as every
other service artifact; a torn or missing worker file is skipped, never an
error -- metrics must stay readable while the fleet is mid-crash, which is
precisely when an operator wants them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Union

from repro.tenancy.scheduler import DEFAULT_TENANT

__all__ = [
    "collect_metrics",
    "read_worker_metrics",
    "render_metrics",
    "write_worker_metrics",
    "WORKER_COUNTER_FIELDS",
]

#: Counter names every worker publishes (missing ones read as 0, so older
#: files and newer readers stay compatible in both directions).
WORKER_COUNTER_FIELDS = (
    "claims",
    "tasks_done",
    "cache_hits",
    "cache_misses",
    "failures",
    "dead_letters",
    "tasks_discarded",
    "heartbeats",
    "io_retries",
)


def _metrics_dir(root: Union[str, os.PathLike]) -> Path:
    return Path(root) / "metrics"


def write_worker_metrics(
    root: Union[str, os.PathLike], worker_id: str, counters: Dict[str, int]
) -> None:
    """Atomically publish one worker's counters under the service root."""
    # Deferred import: repro.service imports this package, so the dependency
    # must stay one-directional at import time.
    from repro.service.queue import atomic_write_json, check_safe_id

    directory = _metrics_dir(root)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"worker_id": str(worker_id), "updated_at": time.time()}
    payload.update({name: int(counters.get(name, 0)) for name in WORKER_COUNTER_FIELDS})
    atomic_write_json(
        directory / f"{check_safe_id(worker_id, kind='worker id')}.json", payload
    )


def read_worker_metrics(
    root: Union[str, os.PathLike],
) -> Dict[str, Dict[str, int]]:
    """Every worker's published counters, keyed by worker id (torn or
    unreadable files are skipped)."""
    directory = _metrics_dir(root)
    out: Dict[str, Dict[str, int]] = {}
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            out[path.name[: -len(".json")]] = payload
    return out


def collect_metrics(root: Union[str, os.PathLike]) -> dict:
    """One operator snapshot of a service root.

    Everything is recomputed from the root's files at call time: no broker,
    worker or metrics daemon needs to be alive.  Raises
    :class:`FileNotFoundError` for a root that does not exist (a typo must
    not silently report an empty, healthy-looking service).
    """
    # Deferred import (see write_worker_metrics).
    from repro.service.broker import Broker

    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(
            f"no service root at {os.fspath(root)!r} (nothing was ever "
            "submitted there, or the path is wrong)"
        )
    broker = Broker(root)

    queue_counts = broker.queue.counts()
    pending_by_tenant: Dict[str, int] = {}
    pending_dir = root / "queue" / "pending"
    if pending_dir.is_dir():
        for path in pending_dir.glob("*.json"):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # claimed mid-scan, or mid-put
            tenant = str(entry.get("tenant", DEFAULT_TENANT))
            pending_by_tenant[tenant] = pending_by_tenant.get(tenant, 0) + 1

    jobs_by_state: Dict[str, int] = {}
    for job_id in broker.list_jobs():
        try:
            state = broker.status(job_id).state
        except Exception:  # noqa: BLE001 -- a torn manifest is not a metric
            continue
        jobs_by_state[state] = jobs_by_state.get(state, 0) + 1

    workers = read_worker_metrics(root)
    totals = {
        name: sum(int(payload.get(name, 0)) for payload in workers.values())
        for name in WORKER_COUNTER_FIELDS
    }
    lookups = totals["cache_hits"] + totals["cache_misses"]
    hit_rate = (totals["cache_hits"] / lookups) if lookups else None

    # No max_bytes gauge: the LRU cap is per-worker-process configuration
    # (never persisted to the root), so any value this read-only snapshot
    # could report would be its own default, not what the fleet enforces.
    cache = broker.cache
    cache_section = {"entries": None, "bytes": None}
    if hasattr(cache, "directory"):
        cache_section["entries"] = sum(
            1 for _ in Path(cache.directory).glob("*.json")
        )
    if hasattr(cache, "size_bytes"):
        try:
            cache_section["bytes"] = int(cache.size_bytes())
        except OSError:
            pass
    cache_section["hits"] = totals["cache_hits"]
    cache_section["misses"] = totals["cache_misses"]
    cache_section["hit_rate"] = hit_rate

    tenants = broker.ledger.tenants()
    for tenant in pending_by_tenant:
        tenants.setdefault(
            tenant,
            {"total": None, "spent": 0.0, "charged": 0.0, "remaining": None},
        )
    for tenant in tenants:
        tenants[tenant]["pending_tasks"] = pending_by_tenant.get(tenant, 0)

    return {
        "root": os.fspath(root),
        "collected_at": time.time(),
        "queue": {**queue_counts, "pending_by_tenant": pending_by_tenant},
        "jobs": jobs_by_state,
        "cache": cache_section,
        "tenants": tenants,
        "workers": {"count": len(workers), "totals": totals, "each": workers},
    }


def _fmt(value, *, unbounded: str = "unbounded") -> str:
    if value is None:
        return unbounded
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_metrics(snapshot: dict) -> str:
    """The ``metrics`` CLI verb's human-readable report."""
    lines: List[str] = []
    queue = snapshot["queue"]
    lines.append("=== queue ===")
    lines.append(
        f"pending {queue.get('pending', 0)}  claimed {queue.get('claimed', 0)}"
        f"  failed {queue.get('failed', 0)}"
    )
    lines.append("=== jobs ===")
    jobs = snapshot["jobs"]
    if jobs:
        lines.append(
            "  ".join(
                f"{state} {jobs[state]}"
                for state in ("submitted", "running", "done", "failed", "cancelled")
                if state in jobs
            )
        )
    else:
        lines.append("none")
    cache = snapshot["cache"]
    lines.append("=== cache ===")
    rate = cache.get("hit_rate")
    lines.append(
        f"entries {_fmt(cache.get('entries'), unbounded='?')}"
        f"  bytes {_fmt(cache.get('bytes'), unbounded='?')}"
        f"  hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}"
        f"  hit_rate {'n/a' if rate is None else f'{100.0 * rate:.1f}%'}"
    )
    lines.append("=== tenants ===")
    tenants = snapshot["tenants"]
    if tenants:
        header = f"{'tenant':<20} {'total':>10} {'spent':>10} {'remaining':>10} {'charged':>10} {'pending':>8}"
        lines.append(header)
        for tenant in sorted(tenants):
            info = tenants[tenant]
            lines.append(
                f"{tenant:<20} {_fmt(info.get('total')):>10} "
                f"{_fmt(info.get('spent', 0.0)):>10} "
                f"{_fmt(info.get('remaining')):>10} "
                f"{_fmt(info.get('charged', 0.0)):>10} "
                f"{info.get('pending_tasks', 0):>8}"
            )
    else:
        lines.append("none")
    workers = snapshot["workers"]
    totals = workers["totals"]
    lines.append("=== workers ===")
    lines.append(
        f"reporting {workers['count']}  claims {totals['claims']}"
        f"  done {totals['tasks_done']}  failures {totals['failures']}"
        f"  dead_letters {totals['dead_letters']}"
        f"  discarded {totals['tasks_discarded']}"
        f"  heartbeats {totals['heartbeats']}"
        f"  io_retries {totals['io_retries']}"
    )
    return "\n".join(lines) + "\n"
