"""Priority classes and fair shares across tenants for the task queue.

The service queue used to pop tasks in plain filename order, so one tenant
flooding the queue starved everybody behind it.  A :class:`TenantScheduler`
decides claim order instead, with three stacked guarantees:

1. **Strict priority classes** -- a task of a higher ``priority`` is always
   offered before any task of a lower one (bigger number = more urgent);
2. **Deficit-weighted round-robin across tenants** inside a class -- each
   tenant accumulates service credit in proportion to its weight and the
   tenant furthest behind its fair share is served next, so a tenant with
   10,000 queued tasks and a tenant with 3 interleave ~1:1 (at equal
   weights) instead of 10,000-then-3;
3. **FIFO within a tenant** -- a tenant's own tasks run in enqueue order.

The scheduler only reorders *claims*; it never touches execution, so the
service determinism contract is untouched -- every job's merged result stays
bit-identical to ``run(spec, trials=B, rng=seed, shards=N)`` no matter how
claims interleave.

Bookkeeping is deliberately process-local (each worker/broker instance keeps
its own credit counters): cross-process fairness emerges because every
claimer independently offers starved tenants first, and keeping the state
off the shared filesystem keeps ``claim()`` free of extra synchronization.
Credit state is trimmed to the currently-active tenants and normalized to a
zero minimum on every :meth:`arrange`, so a tenant returning from idle
competes from even -- it neither banks credit while away nor inherits a
deficit that would starve it.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

__all__ = ["ScheduledEntry", "TenantScheduler"]

#: Scheduling defaults shared by the queue backends.
DEFAULT_TENANT = "default"
DEFAULT_PRIORITY = 0


class ScheduledEntry(NamedTuple):
    """One pending task as the scheduler sees it."""

    entry_id: str  #: queue-level identity (task id / pending filename)
    priority: int  #: bigger = claimed earlier, strictly
    tenant: str  #: fair-share bucket inside the priority class
    seq: float  #: enqueue order within the tenant (FIFO key)
    tie: float = 0.0  #: breaks equal-``seq`` ties (the file queue stamps a
    #: per-process monotonic counter: two puts inside one clock tick keep
    #: their put order instead of falling back to entry-id order)


class TenantScheduler:
    """Deficit-weighted round-robin claim ordering (see module docstring).

    Parameters
    ----------
    weights:
        Optional per-tenant service weights; a tenant with weight 2 receives
        twice the share of a weight-1 tenant inside its priority class.
        Unlisted tenants get ``default_weight``.
    default_weight:
        Weight of tenants absent from ``weights`` (default 1).
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        *,
        default_weight: float = 1.0,
    ) -> None:
        self.default_weight = float(default_weight)
        if self.default_weight <= 0:
            raise ValueError(
                f"default_weight must be positive, got {default_weight}"
            )
        self.weights: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            weight = float(weight)
            if weight <= 0:
                raise ValueError(
                    f"weight of tenant {tenant!r} must be positive, got {weight}"
                )
            self.weights[str(tenant)] = weight
        #: Virtual time of service actually delivered (1/weight per claimed
        #: task), per (priority, tenant); trimmed and zero-normalized
        #: against the active set in arrange().  Guarded by a lock: one
        #: scheduler is shared by every worker thread of a queue (e.g.
        #: ``run_workers``), and an unguarded record() racing _trim()'s
        #: iteration would raise mid-claim.
        self._served: Dict[Tuple[int, str], float] = {}
        self._lock = threading.Lock()

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    # -- the ordering -------------------------------------------------------

    def arrange(self, entries: Iterable[ScheduledEntry]) -> List[ScheduledEntry]:
        """The full claim order for ``entries`` under the current credits."""
        return list(self.arrange_iter(entries))

    def arrange_iter(self, entries: Iterable[ScheduledEntry]):
        """The claim order for ``entries``, generated lazily.

        A claimer normally consumes only the first few candidates (until a
        rename wins), so the interleave is computed on demand -- lower
        priority classes are never even grouped unless every candidate
        above them loses its race.  Pure with respect to scheduling
        decisions: the credit state is snapshotted under the lock up front,
        and credits advance only when :meth:`record` confirms a claim
        actually succeeded -- losing a claim race to another worker never
        charges anyone's share.
        """
        by_class: Dict[int, Dict[str, List[ScheduledEntry]]] = {}
        for entry in entries:
            by_class.setdefault(int(entry.priority), {}).setdefault(
                entry.tenant, []
            ).append(entry)
        with self._lock:
            self._trim(by_class)
            credits = dict(self._served)
        for priority in sorted(by_class, reverse=True):  # strict classes
            yield from self._arrange_class(priority, by_class[priority], credits)

    def _arrange_class(
        self,
        priority: int,
        queues: Dict[str, List[ScheduledEntry]],
        credits: Dict[Tuple[int, str], float],
    ):
        # FIFO within each tenant; equal enqueue stamps (coarse filesystem
        # clocks, fast submitters) break by the queue's per-process put
        # counter, and only then by entry id (which for broker tasks sorts
        # by job and chunk index).
        for tasks in queues.values():
            tasks.sort(key=lambda entry: (entry.seq, entry.tie, entry.entry_id))
        # Weighted fair interleave: each tenant's k-th task "finishes" at
        # virtual time (credits + k) / weight; emit in finish-time order.
        # This is the deficit round-robin schedule for unit-cost tasks --
        # the tenant furthest behind its weighted share always goes next --
        # computed with a heap instead of a quantum loop.
        counter = itertools.count()  # heap tie-breaker, keeps entries stable
        heap = []
        for tenant, tasks in sorted(queues.items()):
            # Credits are kept in virtual-time units (record() adds
            # 1/weight per claimed task), so the next task finishes one
            # more weighted step past the credit already consumed.
            credit = credits.get((priority, tenant), 0.0)
            finish = credit + 1.0 / self._weight(tenant)
            head = tasks[0]
            heapq.heappush(
                heap,
                (finish, head.seq, head.tie, head.entry_id, next(counter), tenant, 0),
            )
        while heap:
            finish, _, _, _, _, tenant, index = heapq.heappop(heap)
            tasks = queues[tenant]
            yield tasks[index]
            index += 1
            if index < len(tasks):
                head = tasks[index]
                heapq.heappush(
                    heap,
                    (
                        finish + 1.0 / self._weight(tenant),
                        head.seq,
                        head.tie,
                        head.entry_id,
                        next(counter),
                        tenant,
                        index,
                    ),
                )

    def record(self, priority: int, tenant: str) -> None:
        """Charge one unit of service: a task of ``tenant`` was claimed."""
        key = (int(priority), str(tenant))
        with self._lock:
            self._served[key] = (
                self._served.get(key, 0.0) + 1.0 / self._weight(tenant)
            )

    def _trim(self, by_class: Dict[int, Dict[str, List[ScheduledEntry]]]) -> None:
        """Drop credits of tenants with nothing pending and re-zero the rest.

        Without the trim a long-flooding tenant's counter would keep growing
        while an idle tenant's stayed at zero -- and the idle tenant, on
        returning, would monopolize the queue until it "caught up", which is
        starvation with the sign flipped.
        """
        active = {
            (priority, tenant)
            for priority, queues in by_class.items()
            for tenant in queues
        }
        self._served = {
            key: value for key, value in self._served.items() if key in active
        }
        for priority, queues in by_class.items():
            # The floor ranges over every *active* tenant -- one that was
            # never served sits at an implicit 0 and must anchor it there,
            # otherwise a single-claim normalization would erase the served
            # tenant's debt and the round-robin would degenerate to FIFO.
            floor = min(
                self._served.get((priority, tenant), 0.0) for tenant in queues
            )
            if floor <= 0.0:
                continue
            for tenant in queues:
                key = (priority, tenant)
                if key in self._served:
                    self._served[key] -= floor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantScheduler(weights={self.weights!r}, "
            f"default_weight={self.default_weight:g})"
        )
