"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generators import generate_zipf_transactions


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: long fault-injection soak (opt in with `pytest -m chaos`)",
    )


def pytest_collection_modifyitems(config, items):
    """Keep the long chaos soak out of the default run.

    The tier-1 suite stays fast; the soak runs only when the ``-m``
    expression explicitly mentions chaos (``pytest -m chaos``).
    """
    if "chaos" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(reason="chaos soak is opt-in: run `pytest -m chaos`")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng():
    """A deterministic numpy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def separated_counts():
    """A well-separated descending count vector (easy selection regime)."""
    return np.array(
        [1000.0, 800.0, 650.0, 500.0, 400.0, 300.0, 200.0, 120.0, 60.0, 30.0, 10.0, 5.0]
    )


@pytest.fixture
def flat_counts():
    """A nearly flat count vector (hard selection regime)."""
    return np.array([100.0, 99.0, 98.5, 98.0, 97.5, 97.0, 96.5, 96.0, 95.5, 95.0])


@pytest.fixture(scope="session")
def small_database():
    """A small synthetic transaction database shared across tests."""
    return generate_zipf_transactions(
        num_records=2000, num_items=200, avg_length=6.0, rng=7, name="test-db"
    )


@pytest.fixture(scope="session")
def item_counts(small_database):
    """Item counts of the shared synthetic database."""
    return small_database.item_counts()
