"""Unit tests for privacy-budget accounting."""

import pytest

from repro.accounting.budget import BudgetExceededError, BudgetOdometer, PrivacyBudget
from repro.accounting.composition import CompositionAccountant


class TestPrivacyBudget:
    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyBudget(0.0)
        with pytest.raises(ValueError):
            PrivacyBudget(-1.0)

    def test_split_proportional(self):
        a, b = PrivacyBudget(1.0).split(0.25, 0.75)
        assert a.epsilon == pytest.approx(0.25)
        assert b.epsilon == pytest.approx(0.75)

    def test_split_rejects_over_allocation(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split(0.7, 0.7)

    def test_split_rejects_nonpositive_fractions(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split(0.5, 0.0)

    def test_split_requires_fractions(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).split()

    def test_halves(self):
        selection, measurement = PrivacyBudget(0.7).halves()
        assert selection.epsilon == pytest.approx(0.35)
        assert measurement.epsilon == pytest.approx(0.35)

    def test_svt_allocation_monotonic_ratio(self):
        threshold, queries = PrivacyBudget(1.0).svt_allocation(k=8, monotonic=True)
        assert threshold == pytest.approx(1.0 / (1.0 + 4.0))
        assert threshold + queries == pytest.approx(1.0)

    def test_svt_allocation_general_ratio(self):
        threshold, queries = PrivacyBudget(1.0).svt_allocation(k=4, monotonic=False)
        assert threshold == pytest.approx(1.0 / (1.0 + 4.0))
        assert queries == pytest.approx(1.0 - threshold)

    def test_svt_allocation_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PrivacyBudget(1.0).svt_allocation(k=0)

    def test_scaled(self):
        assert PrivacyBudget(0.5).scaled(2.0).epsilon == pytest.approx(1.0)
        with pytest.raises(ValueError):
            PrivacyBudget(0.5).scaled(0.0)

    def test_float_conversion(self):
        assert float(PrivacyBudget(0.3)) == pytest.approx(0.3)


class TestBudgetOdometer:
    def test_initial_state(self):
        odometer = BudgetOdometer(1.0)
        assert odometer.total == 1.0
        assert odometer.spent == 0.0
        assert odometer.remaining == 1.0
        assert odometer.remaining_fraction == 1.0

    def test_accepts_privacy_budget(self):
        assert BudgetOdometer(PrivacyBudget(0.5)).total == 0.5

    def test_charge_and_breakdown(self):
        odometer = BudgetOdometer(1.0)
        odometer.charge(0.2, label="threshold")
        odometer.charge(0.3, label="queries")
        odometer.charge(0.1, label="queries")
        assert odometer.spent == pytest.approx(0.6)
        assert odometer.breakdown() == {
            "threshold": pytest.approx(0.2),
            "queries": pytest.approx(0.4),
        }

    def test_overdraft_raises(self):
        odometer = BudgetOdometer(0.5)
        odometer.charge(0.4)
        with pytest.raises(BudgetExceededError):
            odometer.charge(0.2)

    def test_can_charge(self):
        odometer = BudgetOdometer(0.5)
        assert odometer.can_charge(0.5)
        odometer.charge(0.3)
        assert not odometer.can_charge(0.3)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            BudgetOdometer(1.0).charge(-0.1)
        with pytest.raises(ValueError):
            BudgetOdometer(1.0).can_charge(-0.1)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            BudgetOdometer(0.0)

    def test_remaining_never_negative(self):
        odometer = BudgetOdometer(1.0)
        odometer.charge(1.0)
        assert odometer.remaining == 0.0


class TestCompositionAccountant:
    def test_sequential_composition_adds(self):
        accountant = CompositionAccountant()
        accountant.record("m1", 0.3)
        accountant.record("m2", 0.2)
        assert accountant.total_epsilon == pytest.approx(0.5)

    def test_by_mechanism_grouping(self):
        accountant = CompositionAccountant()
        accountant.record("laplace", 0.1)
        accountant.record("laplace", 0.2)
        accountant.record("svt", 0.3)
        summary = accountant.by_mechanism()
        assert summary["laplace"] == pytest.approx(0.3)
        assert summary["svt"] == pytest.approx(0.3)

    def test_target_enforced(self):
        accountant = CompositionAccountant(target_epsilon=0.5)
        accountant.record("m", 0.4)
        with pytest.raises(ValueError):
            accountant.record("m", 0.2)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            CompositionAccountant().record("m", -0.1)

    def test_assert_within(self):
        accountant = CompositionAccountant()
        accountant.record("m", 0.5)
        accountant.assert_within(0.5)
        with pytest.raises(AssertionError):
            accountant.assert_within(0.4)
