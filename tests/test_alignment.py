"""Unit tests for the randomness-alignment framework."""

import numpy as np
import pytest

from repro.alignment.alignments import (
    AlignmentCostExceeded,
    LocalAlignment,
    identity_alignment,
)
from repro.alignment.checker import AlignmentChecker
from repro.alignment.mechanisms import (
    adaptive_svt_alignment,
    noisy_top_k_alignment,
    replay_adaptive_svt,
    replay_noisy_top_k,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap


class TestLocalAlignment:
    def test_cost_is_weighted_l1(self):
        alignment = LocalAlignment(
            original=np.array([0.0, 1.0]),
            aligned=np.array([2.0, 1.0]),
            scales=np.array([4.0, 1.0]),
        )
        assert alignment.cost == pytest.approx(0.5)
        assert alignment.num_shifted == 1

    def test_assert_cost_within(self):
        alignment = LocalAlignment(
            original=np.zeros(3),
            aligned=np.array([1.0, 0.0, 0.0]),
            scales=np.ones(3),
            names=["a", "b", "c"],
        )
        alignment.assert_cost_within(1.0)
        with pytest.raises(AlignmentCostExceeded):
            alignment.assert_cost_within(0.5)

    def test_density_ratio_bound(self):
        alignment = LocalAlignment(
            original=np.zeros(2), aligned=np.array([0.3, 0.2]), scales=np.ones(2)
        )
        assert alignment.density_ratio_bound() == pytest.approx(np.exp(0.5))

    def test_shape_and_scale_validation(self):
        with pytest.raises(ValueError):
            LocalAlignment(np.zeros(2), np.zeros(3), np.ones(2))
        with pytest.raises(ValueError):
            LocalAlignment(np.zeros(2), np.zeros(2), np.array([1.0, 0.0]))

    def test_identity_alignment_has_zero_cost(self):
        alignment = identity_alignment([1.0, 2.0], [1.0, 1.0])
        assert alignment.cost == 0.0
        assert alignment.num_shifted == 0


def _neighbour_counts(counts, direction=-1):
    """Adjacent count vector: one record removed touches a few counts by 1."""
    counts = np.asarray(counts, dtype=float)
    neighbour = counts.copy()
    # Simulate removing a record that contained the first three items.
    neighbour[:3] += direction
    return neighbour


class TestNoisyTopKAlignment:
    def test_alignment_preserves_output_and_cost(self):
        counts = np.array([120.0, 100.0, 95.0, 40.0, 20.0, 10.0, 5.0])
        neighbour = _neighbour_counts(counts)
        mech = NoisyTopKWithGap(epsilon=1.0, k=3, monotonic=True)
        rng = np.random.default_rng(0)
        for _ in range(30):
            noise = np.asarray(mech._noise.sample(size=counts.size, rng=rng))
            indices, gaps = replay_noisy_top_k(mech, counts, noise)
            alignment = noisy_top_k_alignment(mech, counts, neighbour, noise, indices)
            indices_prime, gaps_prime = replay_noisy_top_k(
                mech, neighbour, alignment.aligned
            )
            assert indices_prime == indices
            np.testing.assert_allclose(gaps_prime, gaps, atol=1e-9)
            alignment.assert_cost_within(mech.epsilon)

    def test_losers_noise_unchanged(self):
        counts = np.array([50.0, 40.0, 30.0, 20.0, 10.0])
        neighbour = _neighbour_counts(counts)
        mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True)
        noise = np.asarray(mech._noise.sample(size=5, rng=3))
        indices, _ = replay_noisy_top_k(mech, counts, noise)
        alignment = noisy_top_k_alignment(mech, counts, neighbour, noise, indices)
        losers = [i for i in range(5) if i not in indices]
        np.testing.assert_allclose(
            alignment.aligned[losers], alignment.original[losers]
        )

    def test_requires_an_unselected_query(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True)
        with pytest.raises(ValueError):
            noisy_top_k_alignment(mech, [1.0, 2.0], [1.0, 2.0], [0.0, 0.0], [0, 1])

    def test_duplicate_selection_rejected(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=True)
        with pytest.raises(ValueError):
            noisy_top_k_alignment(
                mech, [1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [0.0, 0.0, 0.0], [1, 1]
            )

    def test_shape_mismatch_rejected(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=1, monotonic=True)
        with pytest.raises(ValueError):
            noisy_top_k_alignment(mech, [1.0, 2.0], [1.0], [0.0, 0.0], [0])


class TestAdaptiveSvtAlignment:
    def _mechanism(self, monotonic=True):
        return AdaptiveSparseVectorWithGap(
            epsilon=0.8, threshold=100.0, k=3, monotonic=monotonic
        )

    def test_alignment_preserves_decisions_monotonic(self):
        counts = np.array([400.0, 120.0, 95.0, 300.0, 20.0, 101.0, 250.0])
        neighbour = _neighbour_counts(counts)
        rng = np.random.default_rng(1)
        for _ in range(30):
            mech = self._mechanism(monotonic=True)
            result = mech.run(counts, rng=rng)
            decisions = [(o.index, o.above, o.branch) for o in result.outcomes]
            alignment = adaptive_svt_alignment(mech, counts, neighbour, result)
            replayed = replay_adaptive_svt(mech, neighbour, alignment.aligned)
            assert replayed == decisions
            alignment.assert_cost_within(mech.epsilon)

    def test_alignment_preserves_decisions_general(self):
        counts = np.array([400.0, 120.0, 95.0, 300.0, 20.0, 101.0, 250.0])
        # General (non-monotonic) adjacent change: some up, some down.
        neighbour = counts + np.array([1.0, -1.0, 0.5, -0.5, 1.0, -1.0, 0.0])
        rng = np.random.default_rng(2)
        for _ in range(30):
            mech = self._mechanism(monotonic=False)
            result = mech.run(counts, rng=rng)
            decisions = [(o.index, o.above, o.branch) for o in result.outcomes]
            alignment = adaptive_svt_alignment(mech, counts, neighbour, result)
            replayed = replay_adaptive_svt(mech, neighbour, alignment.aligned)
            assert replayed == decisions
            alignment.assert_cost_within(mech.epsilon)

    def test_alignment_cost_zero_when_nothing_answered(self):
        counts = np.full(10, -1e6)
        neighbour = counts - 1.0
        mech = self._mechanism(monotonic=True)
        result = mech.run(counts, rng=0)
        alignment = adaptive_svt_alignment(mech, counts, neighbour, result)
        # Only the threshold (possibly) moves; for the monotonic decreasing
        # case it does not move at all.
        assert alignment.cost <= mech.epsilon_threshold + 1e-12

    def test_requires_noise_trace(self):
        mech = self._mechanism()
        result = mech.run(np.full(5, 1e6), rng=0)
        stripped = type(result)(
            outcomes=result.outcomes, metadata=result.metadata, noise_trace=None
        )
        with pytest.raises(ValueError):
            adaptive_svt_alignment(mech, np.full(5, 1e6), np.full(5, 1e6), stripped)


class TestAlignmentChecker:
    def test_noisy_top_k_report_passes(self, separated_counts):
        neighbour = _neighbour_counts(separated_counts)
        mech = NoisyTopKWithGap(epsilon=1.0, k=3, monotonic=True)
        checker = AlignmentChecker(trials=25, rng=0)
        report = checker.check_noisy_top_k(mech, separated_counts, neighbour)
        assert report.passed, report.failures
        assert report.max_cost <= mech.epsilon + 1e-9

    def test_adaptive_svt_report_passes(self, separated_counts):
        neighbour = _neighbour_counts(separated_counts)
        factory = lambda: AdaptiveSparseVectorWithGap(  # noqa: E731
            epsilon=0.7, threshold=250.0, k=3, monotonic=True
        )
        checker = AlignmentChecker(trials=25, rng=1)
        report = checker.check_adaptive_svt(factory, separated_counts, neighbour)
        assert report.passed, report.failures

    def test_checker_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            AlignmentChecker(trials=0)

    def test_report_records_failure(self):
        from repro.alignment.checker import AlignmentReport

        report = AlignmentReport(epsilon_claimed=1.0)
        report.record(preserved=False, cost=0.5, description="changed")
        report.record(preserved=True, cost=2.0, description="expensive")
        assert not report.passed
        assert len(report.failures) == 2
        assert report.max_cost == 2.0
