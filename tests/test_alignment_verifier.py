"""Unit tests for the empirical (Monte-Carlo) DP verifier."""

import numpy as np
import pytest

from repro.alignment.verifier import EmpiricalDPVerifier
from repro.core.noisy_top_k import NoisyMaxWithGap
from repro.mechanisms.sparse_vector import SparseVectorWithGap


class TestVerifierValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EmpiricalDPVerifier(epsilon=0.0)
        with pytest.raises(ValueError):
            EmpiricalDPVerifier(epsilon=1.0, trials=10)
        with pytest.raises(ValueError):
            EmpiricalDPVerifier(epsilon=1.0, slack=0.5)
        with pytest.raises(ValueError):
            EmpiricalDPVerifier(epsilon=1.0, smoothing=0.0)


class TestVerifierOnPrivateMechanisms:
    def test_noisy_max_with_gap_index_release_passes(self):
        counts = np.array([20.0, 18.0, 15.0, 5.0])
        neighbour = counts - np.array([1.0, 0.0, 1.0, 0.0])
        mech = NoisyMaxWithGap(epsilon=0.4, monotonic=True)
        verifier = EmpiricalDPVerifier(epsilon=0.4, trials=4000, slack=1.5)
        report = verifier.check(
            run_on_d=lambda g: mech.select(counts, rng=g),
            run_on_d_prime=lambda g: mech.select(neighbour, rng=g),
            event=lambda result: result.indices[0],
            rng=0,
        )
        assert report.passed, (report.worst_event, report.worst_ratio)

    def test_sparse_vector_with_gap_pattern_release_passes(self):
        counts = np.array([12.0, 3.0, 11.0, 2.0, 10.0])
        neighbour = counts - np.array([1.0, 1.0, 0.0, 0.0, 1.0])
        verifier = EmpiricalDPVerifier(epsilon=0.6, trials=4000, slack=1.5)

        def run(values):
            def inner(generator):
                mech = SparseVectorWithGap(
                    epsilon=0.6, threshold=8.0, k=2, monotonic=True
                )
                return mech.run(values, rng=generator)

            return inner

        report = verifier.check(
            run_on_d=run(counts),
            run_on_d_prime=run(neighbour),
            event=lambda result: tuple(result.above_indices),
            rng=1,
        )
        assert report.passed, (report.worst_event, report.worst_ratio)


class TestVerifierCatchesViolations:
    def test_non_private_release_is_flagged(self):
        # A "mechanism" that releases a deterministic indicator of the input
        # is maximally non-private; the verifier must flag it.
        verifier = EmpiricalDPVerifier(epsilon=0.1, trials=1000, slack=1.1)
        report = verifier.check(
            run_on_d=lambda g: 1,
            run_on_d_prime=lambda g: 0,
            event=lambda output: output,
            rng=0,
        )
        assert not report.passed
        assert report.worst_ratio > np.exp(0.1)

    def test_insufficiently_noised_release_is_flagged(self):
        # Adding far too little noise for the claimed epsilon is detected when
        # the outputs are coarsely bucketed.
        rng_threshold = 5.0
        verifier = EmpiricalDPVerifier(epsilon=0.05, trials=4000, slack=1.2)
        report = verifier.check(
            run_on_d=lambda g: float(10.0 + g.laplace(0, 0.01)) > rng_threshold,
            run_on_d_prime=lambda g: float(0.0 + g.laplace(0, 0.01)) > rng_threshold,
            event=lambda output: output,
            rng=2,
        )
        assert not report.passed
