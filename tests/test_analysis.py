"""Unit tests for the appendix analyses (ties, variance bookkeeping)."""

import numpy as np
import pytest

from repro.analysis.ties import (
    discrete_laplace_tie_probability,
    pairwise_tie_probability,
    tie_probability_bound,
)
from repro.analysis.variance import (
    measurement_variance,
    pairwise_gap_variance,
    svt_gap_variance,
    theorem3_lambda,
    top_k_gap_variance,
    top_k_selection_scale,
)


class TestTieProbability:
    def test_closed_form_matches_series(self):
        for m in (0.0, 1.0, 3.0):
            series = pairwise_tie_probability(1.0, 1.0, value_difference=m)
            closed = discrete_laplace_tie_probability(1.0, 1.0, value_difference=m)
            assert series == pytest.approx(closed, rel=1e-9)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        epsilon, base = 0.8, 1.0
        q = np.exp(-epsilon * base)
        n = 400_000
        u1 = rng.geometric(1 - q, n) - 1
        v1 = rng.geometric(1 - q, n) - 1
        u2 = rng.geometric(1 - q, n) - 1
        v2 = rng.geometric(1 - q, n) - 1
        eta1, eta2 = u1 - v1, u2 - v2
        empirical = np.mean(eta1 == eta2 + 2)  # q1 - q2 = 2
        theoretical = discrete_laplace_tie_probability(
            epsilon, base, value_difference=2.0
        )
        assert empirical == pytest.approx(theoretical, rel=0.05)

    def test_off_lattice_difference_never_ties(self):
        assert pairwise_tie_probability(1.0, 1.0, value_difference=0.5) == 0.0
        assert discrete_laplace_tie_probability(1.0, 1.0, value_difference=0.5) == 0.0

    def test_probability_decreases_with_value_difference(self):
        values = [
            discrete_laplace_tie_probability(1.0, 1.0, value_difference=m)
            for m in range(0, 10)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_union_bound_dominates_pairwise(self):
        epsilon, base = 0.5, 1e-6
        pairwise = discrete_laplace_tie_probability(epsilon, base)
        assert tie_probability_bound(2, epsilon, base) >= pairwise

    def test_bound_negligible_at_machine_epsilon(self):
        # With gamma ~ 2^-52 and a realistic number of queries the failure
        # probability is tiny, as the paper argues.
        assert tie_probability_bound(100_000, 1.0, 2.0**-52) < 1e-5

    def test_bound_clipped_at_one(self):
        assert tie_probability_bound(10**9, 1.0, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pairwise_tie_probability(0.0, 1.0)
        with pytest.raises(ValueError):
            discrete_laplace_tie_probability(1.0, 0.0)
        with pytest.raises(ValueError):
            tie_probability_bound(-1, 1.0, 1.0)


class TestVarianceBookkeeping:
    def test_measurement_variance_formula(self):
        assert measurement_variance(0.7, 10) == pytest.approx(8 * 100 / 0.49)

    def test_selection_scale_monotonic_vs_general(self):
        assert top_k_selection_scale(1.0, 5, monotonic=False) == pytest.approx(
            2 * top_k_selection_scale(1.0, 5, monotonic=True)
        )

    def test_gap_variance_is_twice_per_query_variance(self):
        scale = top_k_selection_scale(1.0, 5, True)
        assert top_k_gap_variance(1.0, 5, True) == pytest.approx(2 * 2 * scale**2)

    def test_pairwise_gap_variance_equals_single_gap_variance(self):
        assert pairwise_gap_variance(0.7, 8, True) == pytest.approx(
            top_k_gap_variance(0.7, 8, True)
        )

    def test_lambda_is_one_for_monotonic_counting_queries(self):
        assert theorem3_lambda(0.7, 10, monotonic=True) == pytest.approx(1.0)

    def test_lambda_is_four_for_general_queries(self):
        # General queries use double the selection scale, so the noise
        # variance ratio is 4.
        assert theorem3_lambda(0.7, 10, monotonic=False) == pytest.approx(4.0)

    def test_svt_gap_variance_section62_formulas(self):
        epsilon, k = 1.0, 10
        monotonic = svt_gap_variance(epsilon, k, True)
        general = svt_gap_variance(epsilon, k, False)
        assert monotonic == pytest.approx(8 * (1 + k ** (2 / 3)) ** 3)
        assert general == pytest.approx(8 * (1 + (2 * k) ** (2 / 3)) ** 3)
        assert general > monotonic

    def test_validation(self):
        with pytest.raises(ValueError):
            measurement_variance(0.0, 5)
        with pytest.raises(ValueError):
            measurement_variance(1.0, 0)
        with pytest.raises(ValueError):
            top_k_selection_scale(-1.0, 5, True)
        with pytest.raises(ValueError):
            svt_gap_variance(1.0, 0, True)
