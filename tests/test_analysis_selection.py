"""Tests for the selection-accuracy analysis helpers."""

import numpy as np
import pytest

from repro.analysis.selection import (
    expected_gap_bias,
    minimum_separation_for_accuracy,
    probability_correct_max,
    probability_correct_max_monte_carlo,
)


class TestProbabilityCorrectMax:
    def test_well_separated_scores_almost_always_correct(self):
        assert probability_correct_max([100.0, 0.0, 0.0], scale=1.0) > 0.999

    def test_flat_scores_give_uniform_chance(self):
        n = 4
        p = probability_correct_max([5.0] * n, scale=1.0)
        assert p == pytest.approx(1.0 / n, abs=0.01)

    def test_matches_monte_carlo(self):
        values = [10.0, 8.0, 5.0, 1.0]
        scale = 2.0
        exact = probability_correct_max(values, scale)
        simulated = probability_correct_max_monte_carlo(
            values, scale, trials=60_000, rng=0
        )
        assert exact == pytest.approx(simulated, abs=0.01)

    def test_decreases_with_noise_scale(self):
        values = [10.0, 8.0, 6.0]
        assert probability_correct_max(values, 0.5) > probability_correct_max(
            values, 5.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_correct_max([1.0], scale=1.0)
        with pytest.raises(ValueError):
            probability_correct_max([1.0, 2.0], scale=0.0)
        with pytest.raises(ValueError):
            probability_correct_max_monte_carlo([1.0, 2.0], scale=1.0, trials=0)


class TestExpectedGapBias:
    def test_negligible_for_separated_scores(self):
        bias = expected_gap_bias([1000.0, 0.0, -1000.0], scale=1.0, rng=0)
        assert abs(bias) < 0.1

    def test_positive_for_flat_scores(self):
        bias = expected_gap_bias([10.0, 10.0, 10.0, 10.0], scale=2.0, rng=1)
        assert bias > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_gap_bias([1.0], scale=1.0)
        with pytest.raises(ValueError):
            expected_gap_bias([1.0, 2.0], scale=-1.0)


class TestMinimumSeparation:
    def test_sufficient_margin_achieves_target(self):
        n, scale, target = 20, 3.0, 0.95
        margin = minimum_separation_for_accuracy(n, scale, target)
        values = np.concatenate([[margin], np.zeros(n - 1)])
        assert probability_correct_max(values, scale) >= target

    def test_margin_grows_with_competitors_and_noise(self):
        assert minimum_separation_for_accuracy(
            100, 1.0
        ) > minimum_separation_for_accuracy(10, 1.0)
        assert minimum_separation_for_accuracy(
            10, 5.0
        ) > minimum_separation_for_accuracy(10, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_separation_for_accuracy(1, 1.0)
        with pytest.raises(ValueError):
            minimum_separation_for_accuracy(5, 0.0)
        with pytest.raises(ValueError):
            minimum_separation_for_accuracy(5, 1.0, target_probability=1.0)
