"""Facade and registry tests: engine equivalence, dispatch, budget charging.

The central acceptance contract: under a shared explicit noise matrix,
``run(spec, engine="batch")`` and ``run(spec, engine="reference")`` are
*bit-identical* for Noisy-Top-K, Sparse Vector and Adaptive SVT -- same
selected indices, gaps, branches, processed prefixes and consumed budgets.
"""

import numpy as np
import pytest

from repro.accounting.budget import BudgetExceededError, BudgetOdometer
from repro.api import (
    AdaptiveSvtSpec,
    Engine,
    LaplaceSpec,
    NoisyTopKSpec,
    Result,
    SelectMeasureSpec,
    SparseVectorSpec,
    SvtVariantSpec,
    UnsupportedEngineError,
    get_executor,
    register_executor,
    run,
    supported_engines,
    validate_engine,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.mechanisms.sparse_vector import SparseVectorWithGap

TRIALS = 48
NUM_QUERIES = 100


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(11)
    return np.sort(rng.uniform(0.0, 500.0, NUM_QUERIES))[::-1].copy()


def assert_results_identical(batch: Result, reference: Result) -> None:
    """Bit-identical equality of every populated per-trial field."""
    assert batch.mechanism == reference.mechanism
    assert batch.trials == reference.trials
    np.testing.assert_array_equal(batch.indices, reference.indices)
    np.testing.assert_array_equal(batch.gaps, reference.gaps)
    np.testing.assert_array_equal(batch.epsilon_consumed, reference.epsilon_consumed)
    for name in ("above", "branches", "processed"):
        b_field, r_field = getattr(batch, name), getattr(reference, name)
        assert (b_field is None) == (r_field is None)
        if b_field is not None:
            np.testing.assert_array_equal(b_field, r_field)


class TestEngineEquivalence:
    @pytest.mark.parametrize("monotonic", [True, False])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_noisy_top_k_bit_identical(self, values, k, monotonic):
        spec = NoisyTopKSpec(queries=values, epsilon=0.5, k=k, monotonic=monotonic)
        scale = (k if monotonic else 2 * k) / 0.5
        noise = np.random.default_rng(k).laplace(0.0, scale, (TRIALS, values.size))
        batch = run(spec, engine="batch", trials=TRIALS, noise=noise)
        reference = run(spec, engine="reference", trials=TRIALS, noise=noise)
        assert_results_identical(batch, reference)

    @pytest.mark.parametrize("with_gap", [False, True])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_sparse_vector_bit_identical(self, values, k, with_gap):
        spec = SparseVectorSpec(
            queries=values, epsilon=0.7, threshold=250.0, k=k, monotonic=True,
            with_gap=with_gap,
        )
        mech = SparseVectorWithGap(epsilon=0.7, threshold=250.0, k=k, monotonic=True)
        rng = np.random.default_rng(k + 100)
        threshold_noise = rng.laplace(0.0, mech.threshold_scale, TRIALS)
        query_noise = rng.laplace(0.0, mech.query_scale, (TRIALS, values.size))
        batch = run(
            spec, engine="batch", trials=TRIALS,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        reference = run(
            spec, engine="reference", trials=TRIALS,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        assert_results_identical(batch, reference)

    @pytest.mark.parametrize("max_answers", [None, 3])
    def test_adaptive_svt_bit_identical(self, values, max_answers):
        spec = AdaptiveSvtSpec(
            queries=values, epsilon=0.7, threshold=250.0, k=5, monotonic=True,
            max_answers=max_answers,
        )
        cfg = AdaptiveSparseVectorWithGap(
            epsilon=0.7, threshold=250.0, k=5, monotonic=True
        ).config
        rng = np.random.default_rng(5)
        threshold_noise = rng.laplace(0.0, cfg.threshold_scale, TRIALS)
        top_noise = rng.laplace(0.0, cfg.top_scale, (TRIALS, values.size))
        middle_noise = rng.laplace(0.0, cfg.middle_scale, (TRIALS, values.size))
        batch = run(
            spec, engine="batch", trials=TRIALS, threshold_noise=threshold_noise,
            top_noise=top_noise, middle_noise=middle_noise,
        )
        reference = run(
            spec, engine="reference", trials=TRIALS, threshold_noise=threshold_noise,
            top_noise=top_noise, middle_noise=middle_noise,
        )
        assert_results_identical(batch, reference)

    def test_per_trial_thresholds_bit_identical(self, values):
        spec = SparseVectorSpec(
            queries=values, epsilon=0.7, threshold=0.0, k=5, monotonic=True
        )
        mech = SparseVectorWithGap(epsilon=0.7, threshold=0.0, k=5, monotonic=True)
        rng = np.random.default_rng(9)
        thresholds = np.linspace(100.0, 400.0, TRIALS)
        threshold_noise = rng.laplace(0.0, mech.threshold_scale, TRIALS)
        query_noise = rng.laplace(0.0, mech.query_scale, (TRIALS, values.size))
        batch = run(
            spec, engine="batch", trials=TRIALS, thresholds=thresholds,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        reference = run(
            spec, engine="reference", trials=TRIALS, thresholds=thresholds,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        assert_results_identical(batch, reference)

    def test_laplace_bit_identical(self, values):
        spec = LaplaceSpec(queries=values[:10], epsilon=0.5, l1_sensitivity=10.0)
        noise = np.random.default_rng(2).laplace(0.0, 10.0 / 0.5, (TRIALS, 10))
        batch = run(spec, engine="batch", trials=TRIALS, noise=noise)
        reference = run(spec, engine="reference", trials=TRIALS, noise=noise)
        np.testing.assert_array_equal(batch.measurements, reference.measurements)

    @pytest.mark.parametrize("mechanism,adaptive", [("top-k", False), ("svt", False), ("svt", True)])
    def test_select_measure_runs_on_both_engines(self, values, mechanism, adaptive):
        # The measurement step draws noise differently per engine (one batched
        # draw vs per-trial releases), so here the contract is statistical:
        # same estimator, same shapes, comparable error levels.
        threshold = None if mechanism == "top-k" else 250.0
        spec = SelectMeasureSpec(
            queries=values, epsilon=0.9, k=5, mechanism=mechanism,
            threshold=threshold, adaptive=adaptive,
        )
        batch = run(spec, engine="batch", trials=256, rng=0)
        reference = run(spec, engine="reference", trials=256, rng=0)
        assert batch.indices.shape[1] == reference.indices.shape[1] or adaptive
        for result in (batch, reference):
            assert result.baseline_squared_errors().size > 0
            assert result.fused_squared_errors().size > 0
        # The gap fusion improves the MSE on both engines.
        assert np.mean(batch.fused_squared_errors()) < np.mean(
            batch.baseline_squared_errors()
        )
        assert np.mean(reference.fused_squared_errors()) < np.mean(
            reference.baseline_squared_errors()
        )


class TestDispatchAndValidation:
    def test_engine_enum_and_string_accepted(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=1.0, k=2, monotonic=True)
        a = run(spec, engine=Engine.REFERENCE, trials=1, rng=0)
        b = run(spec, engine="reference", trials=1, rng=0)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_invalid_engine_name(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=1.0, k=2)
        with pytest.raises(ValueError, match="engine must be one of"):
            run(spec, engine="gpu", trials=1)

    def test_engine_validator_is_shared(self):
        # Harness, session and facade all reject with the same message.
        with pytest.raises(ValueError, match="engine must be one of"):
            validate_engine("loop")
        from repro.evaluation.harness import run_top_k_mse_improvement

        with pytest.raises(ValueError, match="engine must be one of"):
            run_top_k_mse_improvement([1.0, 2.0, 3.0], 1.0, 1, trials=1, engine="loop")

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError, match="MechanismSpec"):
            run({"kind": "noisy-top-k"}, trials=1)

    def test_invalid_trials_rejected(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=1.0, k=2)
        with pytest.raises(ValueError, match="trials"):
            run(spec, trials=0)

    def test_unsupported_option_rejected_by_name(self, values):
        # fast_noise only exists on the batch samplers; the reference
        # executor must refuse it with a clear message, not a TypeError.
        spec = NoisyTopKSpec(queries=values, epsilon=1.0, k=2)
        with pytest.raises(ValueError, match="fast_noise.*reference"):
            run(spec, engine="reference", trials=1, rng=0, fast_noise=False)
        with pytest.raises(ValueError, match="threshold_noise"):
            run(
                SelectMeasureSpec(queries=values, epsilon=1.0, k=2, mechanism="top-k"),
                trials=1, rng=0, threshold_noise=np.zeros(1),
            )
        # Supported options still pass through.
        run(spec, engine="batch", trials=1, rng=0, fast_noise=False)

    def test_svt_variants_run_reference_only(self, values):
        for variant in range(1, 7):
            spec = SvtVariantSpec(
                queries=values, epsilon=0.7, variant=variant, threshold=250.0, k=5
            )
            result = run(spec, engine="reference", trials=8, rng=variant)
            assert result.trials == 8
            assert result.epsilon_consumed.shape == (8,)
            with pytest.raises(UnsupportedEngineError, match="reference"):
                run(spec, engine="batch", trials=8, rng=variant)

    def test_supported_engines_listing(self):
        assert supported_engines(SvtVariantSpec) == ("reference",)
        assert supported_engines(NoisyTopKSpec) == ("batch", "reference")

    def test_unregistered_spec_type(self):
        # A plain class (not a MechanismSpec subclass) so the spec-kind
        # registry stays untouched; the executor registry has no entry for it.
        class OrphanSpec:
            pass

        with pytest.raises(UnsupportedEngineError, match="no executors"):
            get_executor(OrphanSpec, "batch")

    def test_duplicate_registration_refused(self):
        executor = get_executor(NoisyTopKSpec, "batch")
        with pytest.raises(ValueError, match="already"):
            register_executor(NoisyTopKSpec, "batch", executor)
        # replace=True round-trips back to the same executor.
        register_executor(NoisyTopKSpec, "batch", executor, replace=True)

    def test_facade_revalidates_spec(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=1.0, k=2)
        object.__setattr__(spec, "epsilon", -1.0)
        with pytest.raises(ValueError, match="epsilon"):
            run(spec, trials=1)


class TestBudgetCharging:
    def test_full_budget_charged_for_top_k(self, values):
        odometer = BudgetOdometer(10.0)
        spec = NoisyTopKSpec(queries=values, epsilon=0.5, k=2, monotonic=True)
        run(spec, engine="batch", trials=4, rng=0, budget=odometer)
        # Four independent releases compose sequentially.
        assert odometer.spent == pytest.approx(2.0)
        assert odometer.breakdown() == {"noisy-top-k": pytest.approx(2.0)}

    def test_adaptive_charges_only_consumed_budget(self, values):
        odometer = BudgetOdometer(10.0)
        spec = AdaptiveSvtSpec(
            queries=values, epsilon=1.0, threshold=1.0, k=5, monotonic=True
        )
        result = run(spec, engine="reference", trials=1, rng=3, budget=odometer)
        assert odometer.spent == pytest.approx(float(result.epsilon_consumed[0]))
        assert odometer.spent < 1.0

    def test_overdraft_refused_before_any_noise_is_drawn(self, values):
        odometer = BudgetOdometer(1.0)
        spec = NoisyTopKSpec(queries=values, epsilon=0.4, k=2, monotonic=True)
        rng = np.random.default_rng(0)
        state_before = rng.bit_generator.state
        with pytest.raises(BudgetExceededError):
            run(spec, engine="batch", trials=4, rng=rng, budget=odometer)
        # The refusal happens up front: no DP release was computed, so the
        # generator state is untouched and nothing was charged.
        assert rng.bit_generator.state == state_before
        assert odometer.spent == 0.0

    def test_no_budget_means_no_charge(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=0.4, k=2, monotonic=True)
        result = run(spec, engine="batch", trials=4, rng=0)
        assert result.epsilon_consumed.shape == (4,)


class TestResultViews:
    def test_trial_accessors_strip_padding(self, values):
        spec = SparseVectorSpec(
            queries=values, epsilon=0.7, threshold=250.0, k=5, monotonic=True
        )
        result = run(spec, engine="batch", trials=8, rng=0)
        for b in range(result.trials):
            stripped = result.trial_indices(b)
            assert stripped.size == result.num_answered[b]
            assert np.all(stripped >= 0)
            assert result.trial_gaps(b).size == stripped.size
            assert not np.any(np.isnan(result.trial_gaps(b)))

    def test_branch_totals_requires_branches(self, values):
        spec = NoisyTopKSpec(queries=values, epsilon=0.7, k=2)
        result = run(spec, engine="batch", trials=2, rng=0)
        with pytest.raises(ValueError, match="branch"):
            result.branch_totals()

    def test_remaining_budget_fraction(self, values):
        spec = AdaptiveSvtSpec(
            queries=values, epsilon=0.7, threshold=250.0, k=5, monotonic=True,
            max_answers=5,
        )
        result = run(spec, engine="batch", trials=32, rng=0)
        fractions = result.remaining_budget_fraction
        assert fractions.shape == (32,)
        assert np.all((0.0 <= fractions) & (fractions <= 1.0))
