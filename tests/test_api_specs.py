"""JSON round-trip and validation tests for the declarative mechanism specs."""

import json

import numpy as np
import pytest

from repro.api import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    MechanismSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    SpecValidationError,
    SvtVariantSpec,
    spec_from_dict,
    spec_from_json,
    spec_kinds,
)

QUERIES = [120.0, 90.0, 85.0, 30.0, 5.0, 2.0]

#: One representative instance per spec type (non-default values on purpose,
#: so a field dropped from the serialization would be caught).
SPEC_EXAMPLES = [
    NoisyTopKSpec(queries=QUERIES, epsilon=0.7, k=2, monotonic=True, with_gap=True),
    NoisyTopKSpec(
        queries=QUERIES, epsilon=1.2, k=3, monotonic=False, with_gap=False,
        sensitivity=2.0,
    ),
    SparseVectorSpec(
        queries=QUERIES, epsilon=0.7, threshold=50.0, k=2, monotonic=True,
        with_gap=True, theta=0.25,
    ),
    AdaptiveSvtSpec(
        queries=QUERIES, epsilon=0.9, threshold=40.0, k=2, monotonic=True,
        sigma_multiplier=1.5, max_answers=3,
    ),
    SelectMeasureSpec(queries=QUERIES, epsilon=0.8, k=2, mechanism="top-k"),
    SelectMeasureSpec(
        queries=QUERIES, epsilon=0.8, k=2, mechanism="svt", threshold=50.0,
        adaptive=True,
    ),
    LaplaceSpec(queries=QUERIES[:3], epsilon=0.5, l1_sensitivity=3.0),
    SvtVariantSpec(queries=QUERIES, epsilon=0.7, variant=2, threshold=50.0, k=2,
                   monotonic=True),
    SvtVariantSpec(queries=QUERIES, epsilon=0.7, variant=5, threshold=50.0, k=2),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", SPEC_EXAMPLES, ids=lambda s: s.kind + "-" + str(id(s))[-4:])
    def test_dict_round_trip_is_lossless(self, spec):
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt == spec
        assert type(rebuilt) is type(spec)

    @pytest.mark.parametrize("spec", SPEC_EXAMPLES, ids=lambda s: s.kind + "-" + str(id(s))[-4:])
    def test_json_round_trip_is_lossless(self, spec):
        text = spec.to_json()
        json.loads(text)  # valid JSON
        assert spec_from_json(text) == spec

    def test_from_dict_on_concrete_class(self):
        spec = SPEC_EXAMPLES[0]
        assert NoisyTopKSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_on_base_class_dispatches(self):
        spec = SPEC_EXAMPLES[3]
        assert MechanismSpec.from_dict(spec.to_dict()) == spec

    def test_every_registered_kind_is_covered(self):
        covered = {spec.kind for spec in SPEC_EXAMPLES}
        assert covered == set(spec_kinds())

    def test_numpy_queries_coerce_to_tuple(self):
        spec = NoisyTopKSpec(queries=np.asarray(QUERIES), epsilon=1.0, k=2)
        assert spec.queries == tuple(QUERIES)
        np.testing.assert_array_equal(spec.values(), np.asarray(QUERIES))


class TestRejection:
    def test_unknown_kind(self):
        with pytest.raises(SpecValidationError, match="unknown spec kind"):
            spec_from_dict({"kind": "noisy-median", "queries": QUERIES, "epsilon": 1.0})

    def test_missing_kind(self):
        with pytest.raises(SpecValidationError, match="unknown spec kind"):
            spec_from_dict({"queries": QUERIES, "epsilon": 1.0})

    def test_unknown_field_rejected(self):
        payload = SPEC_EXAMPLES[0].to_dict()
        payload["delta"] = 1e-6
        with pytest.raises(SpecValidationError, match="unknown field"):
            spec_from_dict(payload)

    def test_mismatched_kind_on_concrete_class(self):
        payload = SPEC_EXAMPLES[0].to_dict()
        with pytest.raises(SpecValidationError, match="expected kind"):
            SparseVectorSpec.from_dict(payload)

    def test_missing_required_field(self):
        with pytest.raises(SpecValidationError, match="invalid"):
            spec_from_dict({"kind": "noisy-top-k", "epsilon": 1.0})

    def test_invalid_json_text(self):
        with pytest.raises(SpecValidationError, match="not valid JSON"):
            spec_from_json("{not json")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"epsilon": float("nan")},
            {"k": 0},
            {"k": 2.5},
            {"k": 1e400},  # JSON "1e400" parses as inf; int(inf) overflows
            {"k": 10**400},
            {"queries": []},
            {"queries": [1.0, float("inf")]},
            {"queries": "abc"},
            {"sensitivity": -1.0},
        ],
    )
    def test_bad_top_k_parameters(self, overrides):
        payload = {**SPEC_EXAMPLES[0].to_dict(), **overrides}
        with pytest.raises(SpecValidationError):
            spec_from_dict(payload)

    def test_with_gap_needs_k_plus_one_queries(self):
        with pytest.raises(SpecValidationError, match="k\\+1"):
            NoisyTopKSpec(queries=[1.0, 2.0], epsilon=1.0, k=2, with_gap=True).validate()
        # The gap-free baseline only needs k queries.
        NoisyTopKSpec(queries=[1.0, 2.0], epsilon=1.0, k=2, with_gap=False).validate()

    @pytest.mark.parametrize("theta", [0.0, 1.0, -0.3, 1.7])
    def test_bad_theta_rejected(self, theta):
        with pytest.raises(SpecValidationError, match="theta"):
            SparseVectorSpec(
                queries=QUERIES, epsilon=1.0, threshold=10.0, k=2, theta=theta
            ).validate()

    def test_adaptive_max_answers_must_be_positive(self):
        with pytest.raises(SpecValidationError, match="max_answers"):
            AdaptiveSvtSpec(
                queries=QUERIES, epsilon=1.0, threshold=10.0, k=2, max_answers=0
            ).validate()

    def test_select_measure_svt_requires_threshold(self):
        with pytest.raises(SpecValidationError, match="threshold"):
            SelectMeasureSpec(
                queries=QUERIES, epsilon=1.0, k=2, mechanism="svt"
            ).validate()

    def test_select_measure_rejects_unknown_mechanism(self):
        with pytest.raises(SpecValidationError, match="mechanism"):
            SelectMeasureSpec(
                queries=QUERIES, epsilon=1.0, k=2, mechanism="exponential"
            ).validate()

    def test_select_measure_top_k_rejects_svt_options(self):
        with pytest.raises(SpecValidationError, match="adaptive"):
            SelectMeasureSpec(
                queries=QUERIES, epsilon=1.0, k=2, mechanism="top-k", adaptive=True
            ).validate()
        with pytest.raises(SpecValidationError, match="threshold"):
            SelectMeasureSpec(
                queries=QUERIES, epsilon=1.0, k=2, mechanism="top-k", threshold=5.0
            ).validate()

    @pytest.mark.parametrize("variant", [0, 7, -1])
    def test_variant_out_of_catalogue_rejected(self, variant):
        with pytest.raises(SpecValidationError, match="variant"):
            SvtVariantSpec(
                queries=QUERIES, epsilon=1.0, variant=variant, threshold=10.0
            ).validate()

    def test_broken_variants_reject_monotonic(self):
        with pytest.raises(SpecValidationError, match="monotonic"):
            SvtVariantSpec(
                queries=QUERIES, epsilon=1.0, variant=4, threshold=10.0, monotonic=True
            ).validate()

    def test_laplace_sensitivity_must_be_positive(self):
        with pytest.raises(SpecValidationError, match="l1_sensitivity"):
            LaplaceSpec(queries=QUERIES, epsilon=1.0, l1_sensitivity=0.0).validate()

    def test_laplace_default_sensitivity_is_query_count(self):
        spec = LaplaceSpec(queries=QUERIES, epsilon=1.0)
        assert spec.effective_l1_sensitivity == len(QUERIES)

    @pytest.mark.parametrize("value", ["false", "true", "", 2, -1, 0.5, None, [True]])
    def test_non_boolean_flags_rejected(self, value):
        # bool("false") is True -- a string flag would silently enable
        # monotonic accounting (halved noise), so only real booleans and
        # exact 0/1 deserialize.
        payload = {**SPEC_EXAMPLES[0].to_dict(), "monotonic": value}
        with pytest.raises(SpecValidationError, match="boolean"):
            spec_from_dict(payload)

    def test_zero_one_flags_accepted(self):
        payload = {**SPEC_EXAMPLES[0].to_dict(), "monotonic": 1, "with_gap": 0}
        spec = spec_from_dict(payload)
        assert spec.monotonic is True and spec.with_gap is False
