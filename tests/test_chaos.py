"""Tests of the chaos subsystem: fault plans, injection sites, the
invariant checker, and small seeded end-to-end campaigns.

The campaign tests run the real multi-process harness (subprocess workers
under a kill schedule) with seeds chosen so every injection site fires in
CI; the long soak over many seeds is opt-in via ``pytest -m chaos``.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.api.specs import SparseVectorSpec
from repro.chaos import (
    SITES,
    CampaignConfig,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    check_invariants,
    read_fired,
    run_campaign,
)
from repro.chaos.faults import DEFAULT_PERIOD_RANGES, derive_fraction
from repro.chaos.invariants import render_verdicts, result_digest
from repro.api import run as api_run
from repro.service.broker import Broker, JobFailedError
from repro.service.queue import FileJobQueue
from repro.service.worker import Worker
from repro.tenancy.ledger import BudgetLedger

QUERIES = (
    980.0, 850.0, 720.0, 610.0, 540.0, 420.0,
    310.0, 250.0, 180.0, 120.0, 60.0, 25.0,
)


def small_spec(epsilon: float = 1.0) -> SparseVectorSpec:
    return SparseVectorSpec(
        queries=QUERIES, epsilon=epsilon, threshold=400.0, k=3, monotonic=True
    )


def always(site: str) -> FaultPlan:
    """A plan whose ``site`` fires on every single step."""
    return FaultPlan.from_seed(0, overrides={site: 1})


# ---------------------------------------------------------------------------
# fault plans: pure functions of the seed
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.from_seed(7) == FaultPlan.from_seed(7)

    def test_seeds_differ(self):
        plans = {
            tuple(sorted(FaultPlan.from_seed(seed).periods.items()))
            for seed in range(16)
        }
        assert len(plans) > 1

    def test_periods_within_declared_ranges(self):
        for seed in range(8):
            plan = FaultPlan.from_seed(seed)
            for site, (lo, hi) in DEFAULT_PERIOD_RANGES.items():
                assert lo <= plan.periods[site] <= hi

    def test_should_fire_once_per_period_window(self):
        plan = FaultPlan.from_seed(3)
        for site in SITES:
            period = plan.periods[site]
            fires = [
                count
                for count in range(period * 4)
                if plan.should_fire("worker-0i0", site, count)
            ]
            assert len(fires) == 4
            assert all(b - a == period for a, b in zip(fires, fires[1:]))

    def test_offsets_depend_on_scope(self):
        plan = FaultPlan.from_seed(0)
        offsets = {
            plan.offset(f"scope-{i}", "crash-before-ack") for i in range(32)
        }
        assert len(offsets) > 1  # not one global schedule for every actor

    def test_disable_silences_a_site(self):
        plan = FaultPlan.from_seed(0, disable=("stale-lock",))
        assert not any(
            plan.should_fire("s", "stale-lock", count) for count in range(64)
        )

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_seed(0, disable=("no-such-site",))
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_seed(0, overrides={"no-such-site": 2})

    def test_derive_fraction_deterministic_and_bounded(self):
        for labels in (("kill", "worker-0i0"), ("kill", "worker-1i2")):
            a = derive_fraction(5, *labels)
            assert a == derive_fraction(5, *labels)
            assert 0.0 <= a < 1.0
        assert derive_fraction(5, "kill", "a") != derive_fraction(6, "kill", "a")


class TestFaultInjector:
    def test_fire_follows_the_plan_and_logs(self, tmp_path):
        plan = FaultPlan.from_seed(1)
        injector = FaultInjector(plan, "scope-a", log_dir=tmp_path)
        period = plan.periods["stale-lock"]
        fired = [injector.fire("stale-lock") for _ in range(period * 3)]
        assert sum(fired) == 3
        assert read_fired(tmp_path)["stale-lock"] == 3
        assert read_fired(tmp_path)["crash-before-ack"] == 0

    def test_scopes_count_independently(self, tmp_path):
        plan = always("claim-io-error")
        a = FaultInjector(plan, "a", log_dir=tmp_path)
        b = FaultInjector(plan, "b", log_dir=tmp_path)
        with pytest.raises(OSError):
            a.io_error("claim-io-error")
        with pytest.raises(OSError):
            b.io_error("claim-io-error")
        assert read_fired(tmp_path)["claim-io-error"] == 2

    def test_crash_raises_injected_crash(self):
        injector = FaultInjector(always("crash-before-ack"), "s")
        with pytest.raises(InjectedCrash):
            injector.crash("crash-before-ack")
        # The whole point: it must sail through `except Exception` handlers
        # the way a SIGKILL would.
        assert not issubclass(InjectedCrash, Exception)

    def test_unknown_site_rejected(self):
        injector = FaultInjector(FaultPlan.from_seed(0), "s")
        with pytest.raises(ValueError, match="unknown"):
            injector.fire("no-such-site")

    def test_no_injector_paths_unchanged(self, tmp_path):
        # injector=None everywhere must behave exactly as before the chaos
        # subsystem existed: a plain submit/work/result round-trip.
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(small_spec(), trials=8, seed=0, chunk_trials=4)
        Worker(broker, worker_id="w").run_until_idle()
        result = broker.result(job_id)
        assert result.trials == 8


# ---------------------------------------------------------------------------
# injection sites in the ledger and queue
# ---------------------------------------------------------------------------


class TestLedgerFaults:
    def test_torn_journal_append_never_commits_half_a_record(self, tmp_path):
        injector = FaultInjector(always("torn-journal-write"), "client")
        ledger = BudgetLedger(tmp_path / "tenants", injector=injector)
        with pytest.raises(OSError, match="torn"):
            ledger.grant("acme", 5.0)
        # The journal holds a torn half-line; a clean writer must repair it
        # and the replay must not see a phantom grant.
        clean = BudgetLedger(tmp_path / "tenants")
        assert clean.total("acme") is None
        clean.grant("acme", 5.0)
        assert clean.total("acme") == pytest.approx(5.0)
        assert clean.spent("acme") == pytest.approx(0.0)

    def test_abandoned_lock_is_broken_by_the_next_writer(self, tmp_path):
        injector = FaultInjector(always("stale-lock"), "client")
        ledger = BudgetLedger(
            tmp_path / "tenants", stale_lock_seconds=0.05, injector=injector
        )
        ledger.grant("acme", 5.0)  # succeeds, but the lock is left behind
        clean = BudgetLedger(tmp_path / "tenants", stale_lock_seconds=0.05)
        clean.grant("other", 1.0)  # must break the stale lock, not hang
        assert clean.total("acme") == pytest.approx(5.0)
        assert clean.total("other") == pytest.approx(1.0)


class TestQueueFaults:
    def test_torn_put_publishes_nothing(self, tmp_path):
        injector = FaultInjector(always("torn-queue-write"), "client")
        queue = FileJobQueue(tmp_path / "q", injector=injector)
        with pytest.raises(OSError, match="torn"):
            queue.put("payload", task_id="t0")
        counts = queue.counts()
        assert counts["pending"] == 0  # the torn file is a temp, not a task
        assert queue.claim() is None
        # The retry (a fresh injector -- the "process" died) succeeds and
        # the task id is free: the torn temp never took the pending slot.
        clean = FileJobQueue(tmp_path / "q")
        clean.put("payload", task_id="t0")
        assert clean.counts()["pending"] == 1

    def test_claim_io_error_surfaces_as_oserror(self, tmp_path):
        injector = FaultInjector(always("claim-io-error"), "w")
        queue = FileJobQueue(tmp_path / "q", injector=injector)
        queue.put("payload", task_id="t0")
        with pytest.raises(OSError):
            queue.claim()


# ---------------------------------------------------------------------------
# S1: worker resilience (transient retry + idle backoff)
# ---------------------------------------------------------------------------


class _FlakyClaimQueue:
    """Delegates to a real queue, failing the first N claim calls."""

    def __init__(self, inner, failures: int):
        self._inner = inner
        self._failures = failures

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def claim(self, worker_id=None):
        if self._failures > 0:
            self._failures -= 1
            raise PermissionError("transient EACCES from a shared filesystem")
        return self._inner.claim(worker_id=worker_id)


class TestWorkerResilience:
    def test_transient_claim_errors_are_retried(self, tmp_path):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(small_spec(), trials=4, seed=0, chunk_trials=4)
        broker.queue = _FlakyClaimQueue(broker.queue, failures=2)
        worker = Worker(broker, worker_id="w")
        assert worker.run_once() is True  # two hiccups absorbed, task done
        assert worker.io_retries == 2
        assert broker.result(job_id).trials == 4

    def test_exhausted_claim_retries_read_as_empty_poll(self, tmp_path):
        broker = Broker(tmp_path / "svc")
        broker.submit(small_spec(), trials=4, seed=0, chunk_trials=4)
        broker.queue = _FlakyClaimQueue(broker.queue, failures=10 ** 6)
        worker = Worker(broker, worker_id="w")
        assert worker.run_once() is False  # no crash, task still pending
        assert worker.io_retries == Worker.TRANSIENT_RETRIES

    def test_idle_backoff_doubles_up_to_cap_and_jitters(self, tmp_path, monkeypatch):
        broker = Broker(tmp_path / "svc")  # empty queue: every poll is idle
        worker = Worker(broker, worker_id="w", poll_interval=0.01,
                        max_poll_interval=0.08)
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 8:
                raise KeyboardInterrupt  # stop the otherwise-endless serve

        monkeypatch.setattr("repro.service.worker.time.sleep", fake_sleep)
        with pytest.raises(KeyboardInterrupt):
            worker.serve()
        bases = [0.01, 0.02, 0.04, 0.08, 0.08, 0.08, 0.08, 0.08]
        for observed, base in zip(sleeps, bases):
            assert base <= observed <= base * 1.25  # base plus bounded jitter


# ---------------------------------------------------------------------------
# S2: dead-lettered jobs settle their reservation exactly once
# ---------------------------------------------------------------------------


class TestDeadLetterSettlement:
    def _fail_job(self, tmp_path):
        broker = Broker(tmp_path / "svc", max_attempts=2)
        broker.ledger.grant("acme", 100.0)
        job_id = broker.submit(
            small_spec(),
            trials=6,
            seed=0,
            chunk_trials=3,
            options={"thresholds": "not-a-number"},  # raises in the worker
            tenant="acme",
        )
        Worker(broker, worker_id="w").run_until_idle()
        assert broker.status(job_id).state == "failed"
        return broker, job_id

    def test_dead_letter_settles_without_anyone_fetching(self, tmp_path):
        broker, job_id = self._fail_job(tmp_path)
        # Nobody called result(): the fire-and-forget client's job must not
        # strand its worst-case reservation on the ledger.
        assert broker.ledger.is_settled(job_id)
        spent = broker.ledger.spent("acme")
        with pytest.raises(JobFailedError):
            broker.result(job_id)
        assert broker.ledger.spent("acme") == pytest.approx(spent)  # once

    def test_settle_terminal_repairs_a_crashed_settle(self, tmp_path, monkeypatch):
        # Simulate the pre-fix world (mark_failed writes the marker but the
        # settle never lands) and assert both the detection and the repair.
        monkeypatch.setattr(Broker, "settle_terminal", lambda self, job_id: False)
        broker, job_id = self._fail_job(tmp_path)
        assert not broker.ledger.is_settled(job_id)
        verdicts = check_invariants(tmp_path / "svc", oracle=False)
        by_name = {v.name: v for v in verdicts}
        assert not by_name["terminal-jobs-settled"].passed, render_verdicts(verdicts)
        monkeypatch.undo()
        assert broker.settle_terminal(job_id) is True
        assert broker.ledger.is_settled(job_id)
        verdicts = check_invariants(tmp_path / "svc", oracle=False)
        assert all(v.passed for v in verdicts), render_verdicts(verdicts)


# ---------------------------------------------------------------------------
# S4: the heartbeat thread never outlives its task
# ---------------------------------------------------------------------------


class TestHeartbeatShutdown:
    def _broker(self, tmp_path):
        broker = Broker(tmp_path / "svc", lease_seconds=30.0)
        broker.submit(small_spec(), trials=4, seed=0, chunk_trials=4)
        return broker

    def test_heartbeat_stops_when_execution_raises(self, tmp_path):
        broker = Broker(tmp_path / "svc", lease_seconds=30.0, max_attempts=5)
        broker.submit(
            small_spec(), trials=4, seed=0, chunk_trials=4,
            options={"thresholds": "not-a-number"},
        )
        worker = Worker(broker, worker_id="w", heartbeat_seconds=0.01)
        before = set(threading.enumerate())
        assert worker.run_once() is True  # claimed, raised, nacked
        assert worker.failures == 1
        assert set(threading.enumerate()) == before  # no leaked beat thread

    def test_heartbeat_stops_when_worker_crashes_mid_chunk(self, tmp_path):
        broker = self._broker(tmp_path)
        injector = FaultInjector(always("crash-after-put"), "w")
        worker = Worker(
            broker, worker_id="w", heartbeat_seconds=0.01, injector=injector
        )
        before = set(threading.enumerate())
        with pytest.raises(InjectedCrash):
            worker.run_once()
        # The in-process stand-in for a crash still runs `finally`: the
        # beat thread must be joined, or a "dead" worker would keep
        # renewing the lease and starve the retry forever.
        assert set(threading.enumerate()) == before
        assert broker.queue.counts()["claimed"] == 1  # never acked/nacked


# ---------------------------------------------------------------------------
# the invariant checker: passes clean roots, catches corrupted ones
# ---------------------------------------------------------------------------


class TestInvariantChecker:
    def _healthy_root(self, tmp_path):
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("acme", 50.0)
        job_id = broker.submit(
            small_spec(), trials=8, seed=3, chunk_trials=4, tenant="acme"
        )
        Worker(broker, worker_id="w").run_until_idle()
        broker.result(job_id)
        return broker, job_id

    def test_healthy_root_passes_everything(self, tmp_path):
        self._healthy_root(tmp_path)
        verdicts = check_invariants(tmp_path / "svc", oracle_shards=3)
        assert all(v.passed for v in verdicts), render_verdicts(verdicts)
        assert len(verdicts) == 8

    def test_oracle_matches_in_process_run(self, tmp_path):
        broker, job_id = self._healthy_root(tmp_path)
        spec = small_spec()
        oracle = api_run(spec, trials=8, rng=3, shards=2, chunk_trials=4)
        assert result_digest(broker.result(job_id)) == result_digest(oracle)

    def test_lost_done_marker_is_detected(self, tmp_path):
        _, job_id = self._healthy_root(tmp_path)
        marker = tmp_path / "svc" / "jobs" / job_id / "done" / "0.json"
        marker.unlink()
        verdicts = {v.name: v for v in check_invariants(tmp_path / "svc", oracle=False)}
        assert not verdicts["no-lost-jobs"].passed

    def test_vanished_cache_bytes_are_detected(self, tmp_path):
        broker, job_id = self._healthy_root(tmp_path)
        for path in (tmp_path / "svc" / "cache").glob("*.npz"):
            path.unlink()
        verdicts = {v.name: v for v in check_invariants(tmp_path / "svc", oracle=False)}
        assert not verdicts["cache-integrity"].passed

    def test_orphaned_claim_is_detected(self, tmp_path):
        broker, _ = self._healthy_root(tmp_path)
        broker.queue.put("payload", task_id="orphan")
        broker.queue.claim(worker_id="w")
        verdicts = {v.name: v for v in check_invariants(tmp_path / "svc", oracle=False)}
        assert not verdicts["no-orphaned-claims"].passed


# ---------------------------------------------------------------------------
# end-to-end campaigns (subprocess workers, real kills)
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_seeded_campaign_fires_every_site_and_passes(self, tmp_path):
        # Seed 2 is the CI coverage seed: with the default period ranges it
        # fires all eight injection sites in one ~10s campaign.  If a period
        # retune moves its coverage, pick a new seed with the sweep in
        # `python -m repro.evaluation.cli chaos --help`'s docstring.
        report = run_campaign(tmp_path / "root", CampaignConfig(seed=2))
        from repro.chaos import render_report

        assert report.passed, render_report(report)
        missing = [site for site in SITES if report.fired.get(site, 0) == 0]
        assert not missing, f"never fired: {missing}\n{render_report(report)}"
        # The poison job, when its submit survived the faults, must have
        # dead-lettered -- never hang, never report done.
        poison = report.job_states.get("chaos-2-poison")
        assert poison in (None, "failed"), render_report(report)

    def test_same_seed_reproduces_results_bit_for_bit(self, tmp_path):
        first = run_campaign(tmp_path / "a", CampaignConfig(seed=3))
        second = run_campaign(tmp_path / "b", CampaignConfig(seed=3))
        assert first.passed and second.passed
        common = set(first.result_digests) & set(second.result_digests)
        assert common  # at least one job completed in both runs
        for job_id in common:
            assert first.result_digests[job_id] == second.result_digests[job_id]

    @pytest.mark.chaos
    def test_soak_many_seeds(self, tmp_path):
        from repro.chaos import render_report

        union = {site: 0 for site in SITES}
        for seed in range(8):
            report = run_campaign(
                tmp_path / f"seed-{seed}", CampaignConfig(seed=seed)
            )
            assert report.passed, f"seed {seed}\n" + render_report(report)
            for site, count in report.fired.items():
                union[site] += count
        missing = [site for site in union if union[site] == 0]
        assert not missing, f"never fired across the soak: {missing}"
