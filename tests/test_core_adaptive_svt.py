"""Unit tests for Adaptive-Sparse-Vector-with-Gap (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.mechanisms.sparse_vector import SparseVector, SvtBranch


def make_mechanism(**overrides):
    params = dict(epsilon=1.0, threshold=100.0, k=3, monotonic=True)
    params.update(overrides)
    return AdaptiveSparseVectorWithGap(**params)


class TestConfiguration:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_mechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            make_mechanism(k=0)
        with pytest.raises(ValueError):
            make_mechanism(sigma_multiplier=0.0)
        with pytest.raises(ValueError):
            make_mechanism(sensitivity=0.0)
        with pytest.raises(ValueError):
            make_mechanism(max_answers=0)

    def test_top_budget_is_half_of_middle(self):
        mech = make_mechanism()
        assert mech.epsilon_top == pytest.approx(mech.epsilon_middle / 2.0)

    def test_budget_allocation_covers_k_middle_answers(self):
        mech = make_mechanism(epsilon=0.7, k=5)
        total = mech.epsilon_threshold + 5 * mech.epsilon_middle
        assert total == pytest.approx(0.7)

    def test_sigma_is_two_std_of_top_noise(self):
        mech = make_mechanism()
        expected = 2.0 * np.sqrt(2.0) * mech.config.top_scale
        assert mech.sigma == pytest.approx(expected)

    def test_monotonic_halves_query_scales(self):
        # Fix the threshold/query split so only the monotonic noise factor
        # differs (the default theta itself depends on monotonicity).
        monotonic = make_mechanism(monotonic=True, theta=0.2)
        general = make_mechanism(monotonic=False, theta=0.2)
        assert monotonic.config.top_scale == pytest.approx(general.config.top_scale / 2)
        assert monotonic.config.middle_scale == pytest.approx(
            general.config.middle_scale / 2
        )

    def test_explicit_theta(self):
        mech = make_mechanism(theta=0.5, epsilon=1.0, k=2)
        assert mech.epsilon_threshold == pytest.approx(0.5)
        assert mech.epsilon_middle == pytest.approx(0.25)

    def test_gap_variance_per_branch(self):
        mech = make_mechanism()
        top = mech.gap_variance(SvtBranch.TOP)
        middle = mech.gap_variance(SvtBranch.MIDDLE)
        assert top > middle  # the top branch uses more noise
        with pytest.raises(ValueError):
            mech.gap_variance(SvtBranch.BOTTOM)


class TestRunBehaviour:
    def test_far_above_threshold_answered_in_top_branch(self):
        values = np.full(20, 1e7)
        mech = make_mechanism(threshold=0.0, k=3)
        result = mech.run(values, rng=0)
        counts = result.branch_counts()
        assert counts[SvtBranch.TOP] == result.num_answered
        assert counts[SvtBranch.MIDDLE] == 0
        assert result.num_answered > 3  # budget savings buy extra answers

    def test_answers_more_than_standard_svt_when_queries_large(self):
        values = np.full(200, 1e7)
        epsilon, k = 0.7, 5
        adaptive = make_mechanism(epsilon=epsilon, threshold=0.0, k=k)
        standard = SparseVector(epsilon=epsilon, threshold=0.0, k=k, monotonic=True)
        rng = np.random.default_rng(0)
        adaptive_answers = np.mean(
            [adaptive.run(values, rng=rng).num_answered for _ in range(20)]
        )
        standard_answers = np.mean(
            [standard.run(values, rng=rng).num_answered for _ in range(20)]
        )
        assert standard_answers == pytest.approx(k)
        assert adaptive_answers >= 1.8 * k

    def test_below_threshold_costs_nothing(self):
        values = np.full(30, -1e7)
        mech = make_mechanism(threshold=0.0, k=3)
        result = mech.run(values, rng=0)
        assert result.num_answered == 0
        assert result.metadata.epsilon_spent == pytest.approx(mech.epsilon_threshold)
        assert result.num_processed == 30

    def test_budget_never_exceeded(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(-50, 400, 300)
        for seed in range(10):
            mech = make_mechanism(epsilon=0.5, threshold=200.0, k=4)
            result = mech.run(values, rng=seed)
            assert result.metadata.epsilon_spent <= mech.epsilon + 1e-9

    def test_max_answers_stops_early_and_saves_budget(self):
        values = np.full(100, 1e7)
        mech = make_mechanism(threshold=0.0, k=5, max_answers=5)
        result = mech.run(values, rng=0)
        assert result.num_answered == 5
        # All answers came from the cheap top branch, so about half the query
        # budget should be left (Figure 4 shows ~40%).
        assert result.remaining_budget_fraction > 0.3

    def test_gap_released_for_every_answer(self):
        values = np.full(50, 1e6)
        result = make_mechanism(threshold=0.0, k=4).run(values, rng=1)
        assert len(result.gaps) == result.num_answered
        assert all(gap >= 0 for gap in result.gaps)

    def test_top_branch_gap_at_least_sigma(self):
        mech = make_mechanism(threshold=0.0, k=4)
        values = np.full(50, 1e6)
        result = mech.run(values, rng=2)
        for outcome in result.outcomes:
            if outcome.above and outcome.branch is SvtBranch.TOP:
                assert outcome.gap >= mech.sigma

    def test_reproducible_with_seed(self):
        values = np.random.default_rng(0).uniform(0, 300, 100)
        mech = make_mechanism(threshold=150.0, k=4)
        a = mech.run(values, rng=42).above_indices
        b = mech.run(values, rng=42).above_indices
        assert a == b

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            make_mechanism().run(np.zeros((3, 3)))

    def test_metadata_branch_counts_match_outcomes(self):
        values = np.random.default_rng(1).uniform(-100, 400, 200)
        mech = make_mechanism(epsilon=0.7, threshold=100.0, k=5)
        result = mech.run(values, rng=5)
        counts = result.branch_counts()
        assert result.metadata.extra["answers_top"] == counts[SvtBranch.TOP]
        assert result.metadata.extra["answers_middle"] == counts[SvtBranch.MIDDLE]

    def test_stream_stops_when_budget_exhausted(self):
        # Queries sit just above the threshold: each answer uses the middle
        # branch, so after k answers the budget is gone even though the stream
        # continues.
        mech = make_mechanism(epsilon=0.5, threshold=0.0, k=2, monotonic=True)
        values = np.full(500, 1.0)
        result = mech.run(values, rng=0)
        assert result.num_processed < 500

    def test_middle_branch_used_for_borderline_queries(self):
        # Queries just at the threshold cannot clear the sigma margin of the
        # top branch (whp), so middle-branch answers should appear.
        mech = make_mechanism(epsilon=1.0, threshold=0.0, k=5, monotonic=True)
        values = np.full(100, 0.5)
        rng = np.random.default_rng(0)
        middle_total = 0
        for _ in range(20):
            middle_total += mech.run(values, rng=rng).branch_counts()[SvtBranch.MIDDLE]
        assert middle_total > 0
