"""Unit tests for Noisy-Top-K-with-Gap (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.noisy_top_k import NoisyMaxWithGap, NoisyTopKWithGap
from repro.mechanisms.noisy_max import NoisyTopK


class TestNoisyTopKWithGap:
    def test_releases_k_gaps(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=3, monotonic=True)
        result = mech.select(np.arange(10.0), rng=0)
        assert len(result.indices) == 3
        assert result.gaps.shape == (3,)

    def test_gaps_are_nonnegative(self):
        mech = NoisyTopKWithGap(epsilon=0.5, k=4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            result = mech.select(rng.uniform(0, 100, 20), rng=rng)
            assert np.all(result.gaps >= 0)

    def test_requires_k_plus_one_queries(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=3)
        with pytest.raises(ValueError):
            mech.select([1.0, 2.0, 3.0])

    def test_same_noise_calibration_as_gap_free_top_k(self):
        with_gap = NoisyTopKWithGap(epsilon=0.7, k=5, monotonic=True)
        gap_free = NoisyTopK(epsilon=0.7, k=5, monotonic=True)
        assert with_gap.scale == pytest.approx(gap_free.scale)
        assert with_gap.epsilon == gap_free.epsilon

    def test_same_selection_as_gap_free_on_same_noise(self):
        # With identical noise the with-gap variant must select exactly the
        # same indexes as the classical mechanism -- the gap is purely extra.
        values = np.array([50.0, 10.0, 45.0, 5.0, 48.0, 1.0])
        noise = np.array([1.0, -2.0, 0.5, 3.0, -1.0, 0.0])
        with_gap = NoisyTopKWithGap(epsilon=1.0, k=2).select(values, noise=noise)
        gap_free = NoisyTopK(epsilon=1.0, k=2).select(values, noise=noise)
        assert with_gap.indices == gap_free.indices

    def test_gap_values_match_noisy_differences(self):
        values = np.array([50.0, 10.0, 45.0, 5.0])
        noise = np.array([0.0, 0.0, 0.0, 0.0])
        result = NoisyTopKWithGap(epsilon=1.0, k=2).select(values, noise=noise)
        assert result.indices == [0, 2]
        np.testing.assert_allclose(result.gaps, [5.0, 35.0])

    def test_descending_order_of_selected(self):
        values = np.array([10.0, 500.0, 300.0, 100.0, 5.0])
        result = NoisyTopKWithGap(epsilon=10.0, k=3, monotonic=True).select(
            values, rng=0
        )
        assert result.indices == [1, 2, 3]

    def test_pairwise_gap_telescopes(self):
        values = np.array([50.0, 40.0, 30.0, 20.0, 10.0])
        noise = np.zeros(5)
        result = NoisyTopKWithGap(epsilon=1.0, k=3).select(values, noise=noise)
        assert result.pairwise_gap(0, 2) == pytest.approx(20.0)

    def test_gap_variance_property(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=2, monotonic=False)
        assert mech.gap_variance == pytest.approx(4.0 * mech.scale**2)

    def test_gap_unbiasedness(self):
        # The released top gap should be an unbiased estimate of the true gap
        # between the two largest queries when they are well separated.
        values = np.array([1000.0, 600.0, 10.0, 5.0])
        mech = NoisyTopKWithGap(epsilon=2.0, k=1, monotonic=True)
        rng = np.random.default_rng(1)
        gaps = [float(mech.select(values, rng=rng).gaps[0]) for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(400.0, rel=0.03)

    def test_gap_empirical_variance_matches_formula(self):
        values = np.array([1000.0, 600.0, 10.0, 5.0])
        mech = NoisyTopKWithGap(epsilon=2.0, k=1, monotonic=True)
        rng = np.random.default_rng(2)
        gaps = [float(mech.select(values, rng=rng).gaps[0]) for _ in range(6000)]
        assert np.var(gaps) == pytest.approx(mech.gap_variance, rel=0.1)

    def test_metadata_reports_gap_variance(self):
        mech = NoisyTopKWithGap(epsilon=1.0, k=2)
        result = mech.select(np.arange(5.0), rng=0)
        assert result.metadata.extra["gap_variance"] == pytest.approx(mech.gap_variance)

    def test_releases_gaps_flag(self):
        assert NoisyTopKWithGap(epsilon=1.0, k=1).releases_gaps is True
        assert NoisyTopK(epsilon=1.0, k=1).releases_gaps is False


class TestNoisyMaxWithGap:
    def test_k_is_one(self):
        assert NoisyMaxWithGap(epsilon=1.0).k == 1

    def test_select_with_gap_returns_pair(self):
        index, gap = NoisyMaxWithGap(epsilon=5.0, monotonic=True).select_with_gap(
            [0.0, 100.0, 5.0], rng=0
        )
        assert index == 1
        assert gap >= 0.0

    def test_name(self):
        assert NoisyMaxWithGap(epsilon=1.0).name == "noisy-max-with-gap"
