"""Unit tests for the selection-then-measure drivers."""

import numpy as np
import pytest

from repro.accounting.composition import CompositionAccountant
from repro.core.select_measure import (
    select_and_measure_svt,
    select_and_measure_top_k,
)


class TestSelectAndMeasureTopK:
    def test_returns_k_estimates(self, separated_counts):
        result = select_and_measure_top_k(separated_counts, epsilon=1.0, k=3, rng=0)
        assert len(result.indices) == 3
        assert result.measurements.shape == (3,)
        assert result.fused.shape == (3,)
        assert result.gaps.shape == (3,)

    def test_lambda_is_one_for_counting_queries(self, separated_counts):
        result = select_and_measure_top_k(separated_counts, epsilon=0.7, k=4, rng=0)
        assert result.details["lambda"] == pytest.approx(1.0)

    def test_total_epsilon_recorded(self, separated_counts):
        result = select_and_measure_top_k(separated_counts, epsilon=0.9, k=2, rng=0)
        assert result.total_epsilon == pytest.approx(0.9)

    def test_composition_accountant_records_both_halves(self, separated_counts):
        accountant = CompositionAccountant(target_epsilon=1.0)
        select_and_measure_top_k(
            separated_counts, epsilon=1.0, k=2, rng=0, accountant=accountant
        )
        assert accountant.total_epsilon == pytest.approx(1.0)
        assert len(accountant.records) == 2

    def test_error_arrays_have_matching_shapes(self, separated_counts):
        result = select_and_measure_top_k(separated_counts, epsilon=1.0, k=3, rng=1)
        assert result.baseline_squared_errors().shape == (3,)
        assert result.fused_squared_errors().shape == (3,)

    def test_fusion_improves_mse_on_average(self, separated_counts):
        # Aggregate over repetitions; the fused estimator should beat the
        # direct measurements by roughly (k-1)/2k on well-separated counts.
        rng = np.random.default_rng(0)
        k = 5
        baseline, fused = [], []
        for _ in range(400):
            result = select_and_measure_top_k(
                separated_counts, epsilon=1.0, k=k, monotonic=True, rng=rng
            )
            baseline.extend(result.baseline_squared_errors())
            fused.extend(result.fused_squared_errors())
        improvement = 1.0 - np.mean(fused) / np.mean(baseline)
        expected = (k - 1) / (2.0 * k)
        assert improvement == pytest.approx(expected, abs=0.1)


class TestSelectAndMeasureSvt:
    def test_returns_consistent_lengths(self, separated_counts):
        result = select_and_measure_svt(
            separated_counts, epsilon=1.0, k=3, threshold=250.0, rng=0
        )
        n = len(result.indices)
        assert result.measurements.shape == (n,)
        assert result.fused.shape == (n,)
        assert n >= 1

    def test_empty_result_when_everything_below_threshold(self):
        values = np.full(20, -1e6)
        result = select_and_measure_svt(
            values, epsilon=1.0, k=3, threshold=0.0, rng=0
        )
        assert result.indices == []
        assert result.measurements.size == 0
        assert result.fused.size == 0

    def test_adaptive_flag_uses_adaptive_mechanism(self, separated_counts):
        result = select_and_measure_svt(
            separated_counts,
            epsilon=1.0,
            k=3,
            threshold=250.0,
            adaptive=True,
            rng=0,
        )
        assert len(result.indices) >= 1
        assert "epsilon_spent" in result.details

    def test_accountant_total_within_budget(self, separated_counts):
        accountant = CompositionAccountant(target_epsilon=1.0)
        select_and_measure_svt(
            separated_counts,
            epsilon=1.0,
            k=3,
            threshold=250.0,
            rng=0,
            accountant=accountant,
        )
        assert accountant.total_epsilon <= 1.0 + 1e-9

    def test_fusion_improves_mse_on_average(self, separated_counts):
        rng = np.random.default_rng(1)
        baseline, fused = [], []
        for _ in range(400):
            result = select_and_measure_svt(
                separated_counts,
                epsilon=1.0,
                k=4,
                threshold=250.0,
                monotonic=True,
                rng=rng,
            )
            if result.indices:
                baseline.extend(result.baseline_squared_errors())
                fused.extend(result.fused_squared_errors())
        assert np.mean(fused) < np.mean(baseline)
