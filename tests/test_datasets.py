"""Unit tests for the transaction-dataset substrate."""

import numpy as np
import pytest

from repro.datasets.generators import (
    PAPER_DATASETS,
    generate_bms_pos_like,
    generate_kosarak_like,
    generate_quest_t40_like,
    generate_zipf_transactions,
    make_dataset,
)
from repro.datasets.loaders import load_fimi_file, save_fimi_file
from repro.datasets.transactions import TransactionDatabase


class TestTransactionDatabase:
    def _db(self):
        return TransactionDatabase([{1, 2}, {2, 3}, {2}, {4}], name="toy")

    def test_len_and_iteration(self):
        db = self._db()
        assert len(db) == 4
        assert db.num_records == 4
        assert all(isinstance(t, frozenset) for t in db)

    def test_item_histogram(self):
        histogram = self._db().item_histogram()
        assert histogram == {1: 1, 2: 3, 3: 1, 4: 1}

    def test_unique_items_sorted(self):
        assert self._db().unique_items() == [1, 2, 3, 4]
        assert self._db().num_unique_items == 4

    def test_item_counts_default_and_explicit(self):
        db = self._db()
        np.testing.assert_allclose(db.item_counts(), [1, 3, 1, 1])
        np.testing.assert_allclose(db.item_counts([2, 5]), [3, 0])

    def test_top_items_order(self):
        assert self._db().top_items(2) == [(2, 3), (1, 1)]

    def test_top_items_rejects_negative(self):
        with pytest.raises(ValueError):
            self._db().top_items(-1)

    def test_kth_largest_count(self):
        db = self._db()
        assert db.kth_largest_count(1) == 3.0
        assert db.kth_largest_count(2) == 1.0
        assert db.kth_largest_count(100) == 0.0
        with pytest.raises(ValueError):
            db.kth_largest_count(0)

    def test_remove_record_is_adjacent(self):
        db = self._db()
        neighbour = db.remove_record(1)
        assert len(neighbour) == len(db) - 1
        diff = np.abs(db.item_counts([1, 2, 3, 4]) - neighbour.item_counts([1, 2, 3, 4]))
        assert np.max(diff) <= 1.0

    def test_remove_record_out_of_range(self):
        with pytest.raises(IndexError):
            self._db().remove_record(99)

    def test_add_record(self):
        neighbour = self._db().add_record({9})
        assert len(neighbour) == 5
        assert 9 in neighbour.item_histogram()

    def test_adjacent_pairs_limited(self):
        pairs = self._db().adjacent_pairs(max_pairs=2)
        assert len(pairs) == 2
        for original, neighbour in pairs:
            assert len(neighbour) == len(original) - 1

    def test_statistics_fields(self):
        stats = self._db().statistics()
        assert stats["num_records"] == 4.0
        assert stats["num_unique_items"] == 4.0
        assert stats["max_item_count"] == 3.0
        assert stats["avg_transaction_length"] == pytest.approx(6 / 4)

    def test_histogram_cached(self):
        db = self._db()
        first = db.item_histogram()
        second = db.item_histogram()
        assert first == second


class TestGenerators:
    def test_zipf_generator_shapes(self):
        db = generate_zipf_transactions(500, 50, avg_length=5.0, rng=0)
        assert len(db) == 500
        assert db.num_unique_items <= 50
        assert max(db.item_histogram().values()) <= 500

    def test_zipf_generator_heavy_tail(self):
        db = generate_zipf_transactions(3000, 300, avg_length=6.0, rng=1)
        counts = np.sort(db.item_counts())[::-1]
        # Top item should be much more frequent than the median item.
        assert counts[0] > 5 * np.median(counts[counts > 0])

    def test_zipf_generator_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            generate_zipf_transactions(0, 10)
        with pytest.raises(ValueError):
            generate_zipf_transactions(10, 0)

    def test_reproducible_with_seed(self):
        a = generate_zipf_transactions(200, 30, rng=5).item_counts()
        b = generate_zipf_transactions(200, 30, rng=5).item_counts()
        np.testing.assert_allclose(a, b)

    def test_bms_pos_like_scaling(self):
        db = generate_bms_pos_like(scale=0.002, rng=0)
        spec = PAPER_DATASETS["BMS-POS"]
        assert len(db) == int(spec.num_records * 0.002)
        assert db.num_unique_items <= spec.num_unique_items

    def test_kosarak_like_item_scaling(self):
        db = generate_kosarak_like(scale=0.001, rng=0)
        assert len(db) == int(PAPER_DATASETS["kosarak"].num_records * 0.001)
        assert db.num_unique_items >= 50

    def test_quest_t40_like_transaction_length(self):
        db = generate_quest_t40_like(scale=0.002, rng=0)
        lengths = [len(t) for t in db]
        # Average transaction length should be in the T40 ballpark (corruption
        # and deduplication pull it below 40 but it stays well above T10-level).
        assert 10 < np.mean(lengths) < 45

    def test_make_dataset_by_name_case_insensitive(self):
        db = make_dataset("bms-pos", scale=0.001, rng=0)
        assert "BMS-POS" in db.name

    def test_make_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("netflix")

    def test_make_dataset_default_scale(self):
        db = make_dataset("T40I10D100K", rng=0)
        spec = PAPER_DATASETS["T40I10D100K"]
        assert len(db) == int(spec.num_records * spec.default_scale)


class TestFimiLoaders:
    def test_round_trip(self, tmp_path):
        db = TransactionDatabase([{1, 2, 3}, {4}, {2, 5}], name="rt")
        path = tmp_path / "data.txt"
        save_fimi_file(db, path)
        loaded = load_fimi_file(path)
        assert len(loaded) == 3
        assert loaded.item_histogram() == db.item_histogram()

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2 3\n\n4 5\n")
        assert len(load_fimi_file(path)) == 2

    def test_max_records(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1\n2\n3\n4\n")
        assert len(load_fimi_file(path, max_records=2)) == 2

    def test_non_integer_token_raises(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 two 3\n")
        with pytest.raises(ValueError):
            load_fimi_file(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_fimi_file(tmp_path / "missing.txt")

    def test_default_name_is_basename(self, tmp_path):
        path = tmp_path / "bms.txt"
        path.write_text("1 2\n")
        assert load_fimi_file(path).name == "bms.txt"
