"""Tests for canonical hashing and the content-addressed result cache.

The cache contract: a round-trip preserves every :class:`Result` field
exactly (values *and* dtypes); a change to any request ingredient (seed,
trials, engine, any spec field, chunking, options) changes the key; keys are
stable across process restarts and dict key order; and corrupted on-disk
entries degrade to misses, never to crashes.
"""

import json

import numpy as np
import pytest

from repro.api import (
    AdaptiveSvtSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    run,
    spec_from_dict,
)
from repro.dispatch import (
    DiskResultCache,
    MemoryResultCache,
    as_result_cache,
    canonical_json,
    run_key,
    spec_hash,
)

TRIALS = 16


@pytest.fixture(scope="module")
def queries():
    return np.sort(np.random.default_rng(8).uniform(0.0, 500.0, 40))[::-1].copy()


@pytest.fixture(scope="module")
def specs(queries):
    median = float(np.median(queries))
    return {
        # Covers all three result shapes: selection-only, SVT stream fields
        # (above/branches/processed), and measurement fields
        # (estimates/measurements/true_values/mask).
        "top-k": NoisyTopKSpec(queries=queries, epsilon=1.0, k=3, monotonic=True),
        "adaptive": AdaptiveSvtSpec(
            queries=queries, epsilon=1.0, threshold=median, k=3, monotonic=True
        ),
        "select-measure": SelectMeasureSpec(
            queries=queries, epsilon=1.0, k=3, mechanism="svt", threshold=median
        ),
    }


_ARRAY_FIELDS = (
    "epsilon_consumed",
    "indices",
    "gaps",
    "estimates",
    "measurements",
    "true_values",
    "mask",
    "above",
    "branches",
    "processed",
)


def assert_results_identical(a, b):
    assert a.mechanism == b.mechanism
    assert a.engine == b.engine
    assert a.trials == b.trials
    assert a.epsilon == b.epsilon
    assert a.monotonic == b.monotonic
    assert a.extra == b.extra
    for name in _ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert (left is None) == (right is None), name
        if left is not None:
            assert left.dtype == right.dtype, name
            np.testing.assert_array_equal(left, right, err_msg=name)


# ---------------------------------------------------------------------------
# canonical hashing
# ---------------------------------------------------------------------------


class TestHashing:
    def test_hash_is_stable_across_process_restarts(self):
        # Pinned digests: these must never change without bumping
        # repro.dispatch.hashing.KEY_VERSION, or on-disk caches written by
        # older processes would silently go stale (or worse, collide).
        spec = NoisyTopKSpec(
            queries=[120.0, 90.0, 85.0, 30.0, 5.0], epsilon=1.0, k=2, monotonic=True
        )
        assert spec_hash(spec) == (
            "bf8382b0be773c6bcdec7096dceb6652bbb3e4af12e8367d106189c0a865f0ed"
        )
        assert run_key(spec, engine="batch", trials=64, seed=7) == (
            "7db65dd80476f0374d32bd2754b8ad372383eb044949909ce4f77280f4cbafab"
        )

    def test_hash_ignores_dict_key_order(self, specs):
        for spec in specs.values():
            payload = spec.to_dict()
            reordered = dict(reversed(list(payload.items())))
            assert spec_hash(spec_from_dict(reordered)) == spec_hash(spec)

    def test_every_spec_field_changes_the_hash(self, queries):
        base = SparseVectorSpec(
            queries=queries, epsilon=1.0, threshold=10.0, k=3, monotonic=True
        )
        variants = [
            SparseVectorSpec(queries=queries[:-1], epsilon=1.0, threshold=10.0, k=3, monotonic=True),
            SparseVectorSpec(queries=queries, epsilon=2.0, threshold=10.0, k=3, monotonic=True),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=11.0, k=3, monotonic=True),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=10.0, k=4, monotonic=True),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=10.0, k=3, monotonic=False),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=10.0, k=3, monotonic=True, with_gap=False),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=10.0, k=3, monotonic=True, theta=0.5),
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=10.0, k=3, monotonic=True, sensitivity=2.0),
        ]
        hashes = {spec_hash(base)} | {spec_hash(v) for v in variants}
        assert len(hashes) == 1 + len(variants)

    def test_run_key_distinguishes_every_request_ingredient(self, specs):
        spec = specs["top-k"]
        base = run_key(spec, engine="batch", trials=TRIALS, seed=0)
        assert run_key(spec, engine="batch", trials=TRIALS, seed=1) != base
        assert run_key(spec, engine="batch", trials=TRIALS + 1, seed=0) != base
        assert run_key(spec, engine="reference", trials=TRIALS, seed=0) != base
        assert run_key(spec, engine="batch", trials=TRIALS, seed=0, chunk_trials=8) != base
        assert (
            run_key(spec, engine="batch", trials=TRIALS, seed=0, options={"fast_noise": False})
            != base
        )
        other = NoisyTopKSpec(
            queries=spec.queries, epsilon=spec.epsilon, k=spec.k + 1, monotonic=True
        )
        assert run_key(other, engine="batch", trials=TRIALS, seed=0) != base

    def test_run_key_requires_integer_seed(self, specs):
        with pytest.raises(TypeError):
            run_key(specs["top-k"], engine="batch", trials=4, seed=None)
        with pytest.raises(TypeError):
            run_key(specs["top-k"], engine="batch", trials=4, seed=True)

    def test_canonical_json_normalises_negative_zero(self):
        assert canonical_json({"x": -0.0}) == canonical_json({"x": 0.0})

    def test_canonical_json_rejects_non_finite(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


# ---------------------------------------------------------------------------
# cache round-trips
# ---------------------------------------------------------------------------


class TestCacheRoundTrip:
    @pytest.mark.parametrize("kind", ["top-k", "adaptive", "select-measure"])
    def test_disk_round_trip_preserves_every_field(self, specs, tmp_path, kind):
        spec = specs[kind]
        cache = DiskResultCache(tmp_path)
        fresh = run(spec, trials=TRIALS, rng=3, cache=cache)
        # A *new* cache object over the same directory simulates a process
        # restart: the hit must reproduce the result exactly.
        replayed = run(spec, trials=TRIALS, rng=3, cache=DiskResultCache(tmp_path))
        assert_results_identical(replayed, fresh)

    def test_memory_cache_hit_returns_the_stored_result(self, specs):
        cache = MemoryResultCache()
        first = run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        assert run(specs["top-k"], trials=TRIALS, rng=3, cache=cache) is first
        assert len(cache) == 1

    def test_changed_request_misses(self, specs):
        cache = MemoryResultCache()
        run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        run(specs["top-k"], trials=TRIALS, rng=4, cache=cache)  # seed changed
        run(specs["top-k"], trials=TRIALS + 1, rng=3, cache=cache)  # trials changed
        run(specs["top-k"], trials=TRIALS, rng=3, engine="reference", cache=cache)
        assert len(cache) == 4

    def test_sharded_and_unsharded_runs_never_share_an_entry(self, specs):
        # Same (spec, trials, seed) but different execution semantics: the
        # chunked run derives per-chunk seeds, so its sample differs and the
        # two must live under different keys.
        cache = MemoryResultCache()
        plain = run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        sharded = run(
            specs["top-k"], trials=TRIALS, rng=3, cache=cache, shards=2, chunk_trials=4
        )
        assert len(cache) == 2
        assert not np.array_equal(plain.gaps, sharded.gaps)

    def test_cache_requires_integer_seed(self, specs):
        with pytest.raises(ValueError, match="stable content address"):
            run(specs["top-k"], trials=4, rng=None, cache=MemoryResultCache())
        with pytest.raises(ValueError, match="stable content address"):
            run(
                specs["top-k"],
                trials=4,
                rng=np.random.default_rng(0),
                cache=MemoryResultCache(),
            )

    def test_cache_path_argument_builds_a_disk_cache(self, specs, tmp_path):
        target = tmp_path / "nested" / "cache"
        run(specs["top-k"], trials=4, rng=0, cache=str(target))
        assert any(target.glob("*.npz")) and any(target.glob("*.json"))
        assert isinstance(as_result_cache(str(target)), DiskResultCache)

    def test_as_result_cache_rejects_junk(self):
        with pytest.raises(TypeError):
            as_result_cache(42)


# ---------------------------------------------------------------------------
# corruption handling
# ---------------------------------------------------------------------------


class TestCacheCorruption:
    def _populate(self, spec, tmp_path):
        cache = DiskResultCache(tmp_path)
        result = run(spec, trials=TRIALS, rng=3, cache=cache)
        key = run_key(spec, engine="batch", trials=TRIALS, seed=3)
        assert cache.get(key) is not None
        return cache, key, result

    def test_truncated_npz_is_a_miss_not_a_crash(self, specs, tmp_path):
        cache, key, result = self._populate(specs["adaptive"], tmp_path)
        payload = tmp_path / f"{key}.npz"
        payload.write_bytes(payload.read_bytes()[:40])
        assert cache.get(key) is None
        # The facade recomputes through the damaged entry and heals it.
        recomputed = run(specs["adaptive"], trials=TRIALS, rng=3, cache=cache)
        assert_results_identical(recomputed, result)
        assert cache.get(key) is not None

    def test_garbage_metadata_is_a_miss(self, specs, tmp_path):
        cache, key, _ = self._populate(specs["top-k"], tmp_path)
        (tmp_path / f"{key}.json").write_text("{not json at all")
        assert cache.get(key) is None

    def test_metadata_without_payload_is_a_miss(self, specs, tmp_path):
        cache, key, _ = self._populate(specs["top-k"], tmp_path)
        (tmp_path / f"{key}.npz").unlink()
        assert cache.get(key) is None

    def test_inconsistent_metadata_is_a_miss(self, specs, tmp_path):
        cache, key, _ = self._populate(specs["top-k"], tmp_path)
        meta_path = tmp_path / f"{key}.json"
        metadata = json.loads(meta_path.read_text())
        metadata["trials"] = TRIALS + 5  # no longer matches the arrays
        meta_path.write_text(json.dumps(metadata))
        assert cache.get(key) is None

    def test_unknown_key_is_a_miss(self, tmp_path):
        assert DiskResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_quarantined_not_left_in_place(self, specs, tmp_path):
        cache, key, _ = self._populate(specs["top-k"], tmp_path)
        payload = tmp_path / f"{key}.npz"
        payload.write_bytes(payload.read_bytes()[:40])
        assert cache.get(key) is None
        # Both files were moved aside: the corrupt bytes no longer shadow
        # the key (contains() agrees with get()) and the evidence survives
        # for post-mortems instead of being silently re-read every probe.
        assert not (tmp_path / f"{key}.json").exists()
        assert not (tmp_path / f"{key}.npz").exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()
        assert (tmp_path / f"{key}.npz.corrupt").exists()
        assert not cache.contains(key)

    def test_quarantine_reconciles_the_size_accounting(self, specs, tmp_path):
        cache = DiskResultCache(tmp_path, max_bytes=10 ** 9)
        result = run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        assert cache.size_bytes() > 0
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        # The quarantined bytes no longer count against the LRU cap.
        assert cache.size_bytes() == 0
        # And the key is free for a clean re-put (healing re-accounts it).
        cache.put(key, result)
        assert cache.get(key) is not None
        assert cache.size_bytes() > 0

    def test_uncommitted_put_is_not_quarantined(self, specs, tmp_path):
        # An arrays-first in-flight put (npz present, json not yet) must
        # read as a plain miss and keep its payload: quarantining it would
        # destroy a healthy concurrent write.
        cache, key, _ = self._populate(specs["top-k"], tmp_path)
        (tmp_path / f"{key}.json").unlink()
        assert cache.get(key) is None
        assert (tmp_path / f"{key}.npz").exists()
        assert not (tmp_path / f"{key}.npz.corrupt").exists()

    def test_path_traversal_keys_are_rejected(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../escape")
        with pytest.raises(ValueError):
            cache.get("a/b")


# ---------------------------------------------------------------------------
# overwrites and mixed generations
# ---------------------------------------------------------------------------


class TestCacheOverwrite:
    """Concurrent writers and racing readers must never observe a *mixed*
    entry (one generation's arrays with another's metadata): either a
    coherent result or a miss."""

    def test_concurrent_put_of_the_same_key_stays_coherent(self, specs, tmp_path):
        # Two caches over one directory model two workers racing a put of
        # the same content-addressed key: writes are idempotent byte-wise,
        # and the surviving entry round-trips exactly.
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        result = run(specs["top-k"], trials=TRIALS, rng=3)
        writer_a = DiskResultCache(tmp_path)
        writer_b = DiskResultCache(tmp_path)
        writer_a.put(key, result)
        writer_b.put(key, result)
        assert_results_identical(writer_a.get(key), result)
        assert_results_identical(writer_b.get(key), result)

    def test_new_npz_with_stale_json_degrades_to_a_miss(self, specs, tmp_path):
        """A reader that catches a fresh ``.npz`` under metadata from the
        previous generation must miss, never return a mixed result."""
        cache = DiskResultCache(tmp_path)
        stale_key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        cache.put(stale_key, run(specs["top-k"], trials=TRIALS, rng=3))
        other_key = run_key(
            specs["top-k"], engine="batch", trials=TRIALS + 5, seed=4
        )
        cache.put(other_key, run(specs["top-k"], trials=TRIALS + 5, rng=4))
        # Simulate the half-replaced state: the new generation's arrays have
        # landed, its metadata has not (writes are arrays-first).
        payload = (tmp_path / f"{other_key}.npz").read_bytes()
        (tmp_path / f"{stale_key}.npz").write_bytes(payload)
        assert cache.get(stale_key) is None
        # The facade recomputes through it and heals the entry.
        healed = run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        assert_results_identical(healed, cache.get(stale_key))

    def test_cache_hit_charges_the_budget_like_a_miss(self, specs):
        """A replayed release is still a release: the hit-path odometer
        charge must equal the miss-path charge to the last bit."""
        from repro.accounting.budget import BudgetOdometer

        spec = specs["adaptive"]  # epsilon_consumed varies per trial
        cache = MemoryResultCache()
        miss_budget = BudgetOdometer(spec.epsilon * TRIALS)
        run(spec, trials=TRIALS, rng=3, cache=cache, budget=miss_budget)
        hit_budget = BudgetOdometer(spec.epsilon * TRIALS)
        run(spec, trials=TRIALS, rng=3, cache=cache, budget=hit_budget)
        assert hit_budget.spent == miss_budget.spent
        assert len(cache) == 1  # the second run really was a hit


# ---------------------------------------------------------------------------
# LRU eviction (max_bytes)
# ---------------------------------------------------------------------------


class TestCacheEviction:
    def _fill(self, cache, spec, seeds):
        """One entry per seed; returns {key: result}, oldest mtime first."""
        import os
        import time

        entries = {}
        base = time.time() - 1_000.0
        for offset, seed in enumerate(seeds):
            key = run_key(spec, engine="batch", trials=TRIALS, seed=seed)
            result = run(spec, trials=TRIALS, rng=seed)
            cache.put(key, result)
            # Deterministic LRU order regardless of filesystem timestamp
            # resolution: stamp each entry with its own second.
            stamp = (base + offset, base + offset)
            os.utime(cache.directory / f"{key}.json", stamp)
            os.utime(cache.directory / f"{key}.npz", stamp)
            entries[key] = result
        return entries

    def _entry_bytes(self, spec, tmp_path):
        probe = DiskResultCache(tmp_path / "probe")
        key = run_key(spec, engine="batch", trials=TRIALS, seed=999)
        probe.put(key, run(spec, trials=TRIALS, rng=999))
        return probe.size_bytes()

    def test_put_evicts_oldest_beyond_max_bytes(self, specs, tmp_path):
        spec = specs["top-k"]
        entry = self._entry_bytes(spec, tmp_path)
        cache = DiskResultCache(tmp_path / "lru", max_bytes=int(2.5 * entry))
        entries = self._fill(cache, spec, seeds=(0, 1, 2))
        newest = run_key(spec, engine="batch", trials=TRIALS, seed=3)
        cache.put(newest, run(spec, trials=TRIALS, rng=3))
        assert cache.size_bytes() <= cache.max_bytes
        keys = [run_key(spec, engine="batch", trials=TRIALS, seed=s) for s in (0, 1, 2)]
        assert cache.get(keys[0]) is None  # oldest evicted
        # Retained entries still hit, bit-exactly.
        assert_results_identical(cache.get(keys[2]), entries[keys[2]])
        assert cache.get(newest) is not None

    def test_touch_on_get_protects_recently_read_entries(self, specs, tmp_path):
        spec = specs["top-k"]
        entry = self._entry_bytes(spec, tmp_path)
        cache = DiskResultCache(tmp_path / "lru", max_bytes=int(2.5 * entry))
        entries = self._fill(cache, spec, seeds=(0, 1))
        keys = [run_key(spec, engine="batch", trials=TRIALS, seed=s) for s in (0, 1)]
        # Reading the oldest entry refreshes its mtime ...
        assert_results_identical(cache.get(keys[0]), entries[keys[0]])
        # ... so the next eviction removes the *unread* entry instead.
        newest = run_key(spec, engine="batch", trials=TRIALS, seed=5)
        cache.put(newest, run(spec, trials=TRIALS, rng=5))
        assert cache.get(keys[1]) is None
        assert_results_identical(cache.get(keys[0]), entries[keys[0]])

    def test_just_written_entry_survives_its_own_put(self, specs, tmp_path):
        cache = DiskResultCache(tmp_path / "tiny", max_bytes=1)
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=0)
        result = run(specs["top-k"], trials=TRIALS, rng=0)
        cache.put(key, result)
        assert_results_identical(cache.get(key), result)
        # The next put takes its place.
        other = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=1)
        cache.put(other, run(specs["top-k"], trials=TRIALS, rng=1))
        assert cache.get(key) is None
        assert cache.get(other) is not None

    def test_unbounded_cache_never_evicts(self, specs, tmp_path):
        cache = DiskResultCache(tmp_path / "unbounded")
        self._fill(cache, specs["top-k"], seeds=range(4))
        assert cache.max_bytes is None
        assert len(list(cache.directory.glob("*.npz"))) == 4

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            DiskResultCache(tmp_path, max_bytes=0)


# ---------------------------------------------------------------------------
# cheap existence probe
# ---------------------------------------------------------------------------


class TestCacheContains:
    def test_contains_without_deserializing(self, specs, tmp_path):
        cache = DiskResultCache(tmp_path)
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        assert cache.contains(key) is False
        run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        assert cache.contains(key) is True
        assert key in cache  # the operator form delegates to contains()

    def test_contains_detects_truncated_payload(self, specs, tmp_path):
        # The zip directory sits at the end of the .npz, so a truncated
        # payload fails the probe just like it fails get().
        cache = DiskResultCache(tmp_path)
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        payload = tmp_path / f"{key}.npz"
        payload.write_bytes(payload.read_bytes()[:40])
        assert cache.contains(key) is False

    def test_contains_counts_as_a_use_for_lru(self, specs, tmp_path):
        import os
        import time

        spec = specs["top-k"]
        probe = DiskResultCache(tmp_path / "probe")
        probe_key = run_key(spec, engine="batch", trials=TRIALS, seed=99)
        probe.put(probe_key, run(spec, trials=TRIALS, rng=99))
        entry = probe.size_bytes()

        cache = DiskResultCache(tmp_path / "lru", max_bytes=int(2.5 * entry))
        keys = []
        base = time.time() - 1_000.0
        for offset, seed in enumerate((0, 1)):
            key = run_key(spec, engine="batch", trials=TRIALS, seed=seed)
            cache.put(key, run(spec, trials=TRIALS, rng=seed))
            stamp = (base + offset, base + offset)
            os.utime(cache.directory / f"{key}.json", stamp)
            os.utime(cache.directory / f"{key}.npz", stamp)
            keys.append(key)
        # Probing the oldest entry refreshes it; the eviction takes the
        # unprobed one.
        assert cache.contains(keys[0]) is True
        newest = run_key(spec, engine="batch", trials=TRIALS, seed=5)
        cache.put(newest, run(spec, trials=TRIALS, rng=5))
        assert cache.contains(keys[1]) is False
        assert cache.get(keys[0]) is not None

    def test_memory_cache_contains(self, specs):
        cache = MemoryResultCache()
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        assert cache.contains(key) is False
        run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        assert cache.contains(key) is True and key in cache

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_evict_drops_the_entry(self, specs, tmp_path, backend):
        cache = MemoryResultCache() if backend == "memory" else DiskResultCache(tmp_path)
        key = run_key(specs["top-k"], engine="batch", trials=TRIALS, seed=3)
        cache.evict(key)  # missing key: no-op, no error
        run(specs["top-k"], trials=TRIALS, rng=3, cache=cache)
        assert cache.contains(key)
        cache.evict(key)
        assert not cache.contains(key)
        assert cache.get(key) is None
        if backend == "disk":
            assert not list(tmp_path.glob(f"{key}.*"))
