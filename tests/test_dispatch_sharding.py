"""Determinism / equivalence tests for sharded spec execution.

The dispatch layer's contract: a seeded sharded run is a pure function of
``(spec, engine, trials, seed, chunk_trials)`` -- bit-identical on 1, 2 or 8
shards, on a serial or a process pool, and (in the single-chunk case)
bit-identical to a plain unsharded ``run()`` with the derived chunk seed.
The multi-chunk merge is checked non-circularly: every chunk of the merged
result must equal an independent plain ``run()`` of that chunk, with
convention-correct padding beyond the chunk's own width.
"""

import numpy as np
import pytest

from repro.api import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    SvtVariantSpec,
    UnsupportedEngineError,
    run,
)
from repro.dispatch import (
    ShardMergeError,
    ShardTask,
    SerialPool,
    WorkerPool,
    make_tasks,
    merge_results,
    plan_chunks,
    run_sharded,
)

NUM_QUERIES = 40
TRIALS = 24
CHUNK = 5  # -> chunks of 5,5,5,5,4: exercises the remainder and ragged widths


@pytest.fixture(scope="module")
def queries():
    return np.sort(np.random.default_rng(3).uniform(0.0, 500.0, NUM_QUERIES))[::-1].copy()


def shardable_specs(queries):
    """One spec per (kind, engine) pair the sharded path must reproduce."""
    median = float(np.median(queries))
    return {
        "noisy-top-k": (NoisyTopKSpec(queries=queries, epsilon=1.0, k=3, monotonic=True), "batch"),
        "sparse-vector": (
            SparseVectorSpec(queries=queries, epsilon=1.0, threshold=median, k=3, monotonic=True),
            "batch",
        ),
        "adaptive-svt": (
            AdaptiveSvtSpec(queries=queries, epsilon=1.0, threshold=median, k=3, monotonic=True),
            "batch",
        ),
        "select-measure-top-k": (
            SelectMeasureSpec(queries=queries, epsilon=1.0, k=3, mechanism="top-k"),
            "batch",
        ),
        "select-measure-svt": (
            SelectMeasureSpec(
                queries=queries, epsilon=1.0, k=3, mechanism="svt", threshold=median
            ),
            "batch",
        ),
        "laplace": (LaplaceSpec(queries=queries, epsilon=1.0), "batch"),
        "svt-variant-reference": (
            SvtVariantSpec(queries=queries, epsilon=1.0, variant=1, threshold=median, k=3),
            "reference",
        ),
    }


SPEC_KEYS = (
    "noisy-top-k",
    "sparse-vector",
    "adaptive-svt",
    "select-measure-top-k",
    "select-measure-svt",
    "laplace",
    "svt-variant-reference",
)

_ARRAY_FIELDS = (
    "epsilon_consumed",
    "indices",
    "gaps",
    "estimates",
    "measurements",
    "true_values",
    "mask",
    "above",
    "branches",
    "processed",
)

#: Padding conventions of the (B, w) matrix fields (what a merged result must
#: contain beyond a narrow chunk's own width).
_PADS = {
    "indices": -1,
    "gaps": np.nan,
    "estimates": np.nan,
    "measurements": np.nan,
    "true_values": np.nan,
    "mask": False,
}


def assert_results_identical(a, b):
    """Bit-identical equality of every Result field, dtypes included."""
    assert a.mechanism == b.mechanism
    assert a.engine == b.engine
    assert a.trials == b.trials
    assert a.epsilon == b.epsilon
    assert a.monotonic == b.monotonic
    assert a.extra == b.extra
    for name in _ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert (left is None) == (right is None), name
        if left is not None:
            assert left.dtype == right.dtype, name
            np.testing.assert_array_equal(left, right, err_msg=name)


def assert_is_padding(block: np.ndarray, pad) -> None:
    if isinstance(pad, float) and np.isnan(pad):
        assert np.all(np.isnan(block))
    else:
        assert np.all(block == pad)


def chunk_layout(trials, chunk):
    sizes, remaining = [], trials
    while remaining > 0:
        size = min(chunk, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def plain_chunk_runs(spec, engine, trials, seed, chunk, options=None):
    """The oracle: each chunk executed by a plain unsharded ``run()`` call
    with the chunk's spawned seed -- no dispatch code involved."""
    sizes = chunk_layout(trials, chunk)
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    runs, start = [], 0
    for size, child in zip(sizes, children):
        opts = {}
        for name, value in (options or {}).items():
            value = np.asarray(value)
            opts[name] = value[start : start + size] if value.ndim else value
        runs.append(
            run(spec, engine=engine, trials=size, rng=np.random.default_rng(child), **opts)
        )
        start += size
    return runs


def assert_merged_matches_chunks(merged, chunk_runs):
    """Each trial block of the merged result equals its oracle chunk run,
    and columns beyond a chunk's own width hold the padding convention."""
    assert merged.trials == sum(r.trials for r in chunk_runs)
    start = 0
    for chunk_run in chunk_runs:
        stop = start + chunk_run.trials
        np.testing.assert_array_equal(
            merged.epsilon_consumed[start:stop], chunk_run.epsilon_consumed
        )
        for name in ("above", "branches"):
            if getattr(chunk_run, name) is not None:
                np.testing.assert_array_equal(
                    getattr(merged, name)[start:stop], getattr(chunk_run, name)
                )
        if chunk_run.processed is not None:
            np.testing.assert_array_equal(
                merged.processed[start:stop], chunk_run.processed
            )
        for name, pad in _PADS.items():
            chunk_field = getattr(chunk_run, name)
            merged_field = getattr(merged, name)
            assert (chunk_field is None) == (merged_field is None)
            if chunk_field is None:
                continue
            width = chunk_field.shape[1]
            np.testing.assert_array_equal(
                merged_field[start:stop, :width], chunk_field, err_msg=name
            )
            if merged_field.shape[1] > width:
                assert_is_padding(merged_field[start:stop, width:], pad)
        start = stop


# ---------------------------------------------------------------------------
# bit-identical sharded execution
# ---------------------------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("key", SPEC_KEYS)
    def test_single_chunk_bit_identical_to_unsharded_run(self, queries, key):
        """With one chunk, any shard count reproduces the plain unsharded
        batch run under the derived chunk seed, bit for bit."""
        spec, engine = shardable_specs(queries)[key]
        child = np.random.SeedSequence(11).spawn(1)[0]
        unsharded = run(
            spec, engine=engine, trials=TRIALS, rng=np.random.default_rng(child)
        )
        for shards in (1, 2, 8):
            sharded = run(
                spec,
                engine=engine,
                trials=TRIALS,
                rng=11,
                shards=shards,
                chunk_trials=TRIALS,
            )
            assert_results_identical(sharded, unsharded)

    @pytest.mark.parametrize("key", SPEC_KEYS)
    def test_shard_count_and_pool_type_do_not_change_results(self, queries, key):
        """Multi-chunk runs: 1, 2 and 8 shards on serial and process pools
        are bit-identical."""
        spec, engine = shardable_specs(queries)[key]
        baseline = run(
            spec, engine=engine, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK
        )
        for shards in (1, 2, 8):
            serial = run(
                spec,
                engine=engine,
                trials=TRIALS,
                rng=7,
                shards=shards,
                chunk_trials=CHUNK,
                pool="serial",
            )
            assert_results_identical(serial, baseline)
        process = run(
            spec,
            engine=engine,
            trials=TRIALS,
            rng=7,
            shards=2,
            chunk_trials=CHUNK,
            pool="process",
        )
        assert_results_identical(process, baseline)

    @pytest.mark.parametrize("key", SPEC_KEYS)
    def test_merged_chunks_match_independent_plain_runs(self, queries, key):
        """Non-circular merge check: every chunk of the merged result equals
        a plain facade run of that chunk, padding included."""
        spec, engine = shardable_specs(queries)[key]
        merged = run(
            spec, engine=engine, trials=TRIALS, rng=5, shards=2, chunk_trials=CHUNK
        )
        oracle = plain_chunk_runs(spec, engine, TRIALS, 5, CHUNK)
        assert_merged_matches_chunks(merged, oracle)

    def test_eight_shards_process_pool_many_chunks(self, queries):
        spec, engine = shardable_specs(queries)["adaptive-svt"]
        baseline = run(
            spec, engine=engine, trials=TRIALS, rng=2, shards=1, chunk_trials=3
        )
        with WorkerPool(workers=8) as pool:
            fanned = run(
                spec,
                engine=engine,
                trials=TRIALS,
                rng=2,
                shards=8,
                chunk_trials=3,
                pool=pool,
            )
        assert_results_identical(fanned, baseline)

    def test_per_trial_thresholds_split_across_chunks(self, queries):
        spec = SparseVectorSpec(
            queries=queries, epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        thresholds = np.linspace(50.0, 450.0, TRIALS)
        sharded = run(
            spec,
            trials=TRIALS,
            rng=13,
            shards=2,
            chunk_trials=CHUNK,
            thresholds=thresholds,
        )
        oracle = plain_chunk_runs(
            spec, "batch", TRIALS, 13, CHUNK, options={"thresholds": thresholds}
        )
        assert_merged_matches_chunks(sharded, oracle)

    def test_same_seed_reproduces_different_seed_differs(self, queries):
        spec, engine = shardable_specs(queries)["noisy-top-k"]
        first = run(spec, trials=TRIALS, rng=21, shards=2, chunk_trials=CHUNK)
        again = run(spec, trials=TRIALS, rng=21, shards=2, chunk_trials=CHUNK)
        other = run(spec, trials=TRIALS, rng=22, shards=2, chunk_trials=CHUNK)
        assert_results_identical(first, again)
        assert not np.array_equal(first.gaps, other.gaps)

    def test_unseeded_sharded_run_is_internally_consistent(self, queries):
        spec, engine = shardable_specs(queries)["noisy-top-k"]
        result = run(spec, trials=TRIALS, rng=None, shards=2, chunk_trials=CHUNK)
        assert result.trials == TRIALS
        assert result.indices.shape == (TRIALS, 3)


# ---------------------------------------------------------------------------
# unsupported engines and argument validation
# ---------------------------------------------------------------------------


class TestShardedErrors:
    def test_svt_variant_batch_raises_unsupported_through_sharded_path(self, queries):
        spec = SvtVariantSpec(
            queries=queries, epsilon=1.0, variant=3, threshold=250.0, k=1
        )
        with pytest.raises(UnsupportedEngineError):
            run(spec, engine="batch", trials=8, rng=0, shards=2)
        with pytest.raises(UnsupportedEngineError):
            run_sharded(spec, engine="batch", trials=8, seed=0, shards=2)

    def test_sharded_run_requires_integer_seed(self, queries):
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        with pytest.raises(ValueError, match="integer root seed"):
            run(spec, trials=8, rng=np.random.default_rng(0), shards=2)

    def test_pool_and_chunk_trials_require_shards(self, queries):
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        with pytest.raises(ValueError, match="only apply to sharded runs"):
            run(spec, trials=8, rng=0, chunk_trials=4)
        with pytest.raises(ValueError, match="only apply to sharded runs"):
            run(spec, trials=8, rng=0, pool="serial")

    def test_invalid_shard_and_pool_arguments(self, queries):
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        with pytest.raises(ValueError, match="shards must be at least 1"):
            run(spec, trials=8, rng=0, shards=0)
        with pytest.raises(ValueError, match="pool must be"):
            run(spec, trials=8, rng=0, shards=2, pool="gpu")
        with pytest.raises(TypeError, match="run_tasks"):
            run(spec, trials=8, rng=0, shards=2, pool=object())

    def test_invalid_chunk_trials_rejected_even_on_a_warm_cache(self, queries):
        # chunk_trials=0 must fail identically whether or not the cache
        # already holds the default-chunking entry (a falsy-zero bug once
        # made it alias the default key and succeed on warm caches).
        from repro.dispatch import MemoryResultCache

        spec, _ = shardable_specs(queries)["noisy-top-k"]
        cache = MemoryResultCache()
        run(spec, trials=8, rng=0, shards=2, cache=cache)
        with pytest.raises(ValueError, match="chunk_trials must be at least 1"):
            run(spec, trials=8, rng=0, shards=2, chunk_trials=0, cache=cache)


# ---------------------------------------------------------------------------
# chunk planning, task serialization, merging
# ---------------------------------------------------------------------------


class TestChunkPlanning:
    def test_plan_chunks_layouts(self):
        assert plan_chunks(24, 5) == [5, 5, 5, 5, 4]
        assert plan_chunks(10, 5) == [5, 5]
        assert plan_chunks(3, 5) == [3]
        assert plan_chunks(1, 1) == [1]

    def test_plan_chunks_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_chunks(0, 5)
        with pytest.raises(ValueError):
            plan_chunks(5, 0)

    def test_layout_is_independent_of_worker_count(self):
        # The whole determinism story rests on this: the chunk layout is a
        # function of (trials, chunk_trials) only.
        assert plan_chunks(24, 5) == chunk_layout(24, 5)


class TestShardTasks:
    def test_task_json_round_trip(self, queries):
        spec, _ = shardable_specs(queries)["sparse-vector"]
        tasks = make_tasks(
            spec,
            engine="batch",
            trials=TRIALS,
            seed=9,
            chunk_trials=CHUNK,
            options={"thresholds": np.linspace(1.0, 2.0, TRIALS)},
        )
        assert [t.trials for t in tasks] == [5, 5, 5, 5, 4]
        for task in tasks:
            restored = ShardTask.from_json(task.to_json())
            assert restored.engine == task.engine
            assert restored.trials == task.trials
            assert restored.entropy == task.entropy
            assert restored.spawn_key == task.spawn_key
            assert restored.index == task.index
            np.testing.assert_array_equal(
                np.asarray(restored.options["thresholds"]),
                np.asarray(task.options["thresholds"]),
            )

    def test_tasks_share_root_entropy_with_distinct_spawn_keys(self, queries):
        spec, _ = shardable_specs(queries)["laplace"]
        tasks = make_tasks(spec, engine="batch", trials=10, seed=4, chunk_trials=3)
        assert len({t.entropy for t in tasks}) == 1
        assert len({t.spawn_key for t in tasks}) == len(tasks)

    def test_serial_pool_consumes_queued_json(self, queries):
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        tasks = make_tasks(spec, engine="batch", trials=10, seed=4, chunk_trials=5)
        results = SerialPool().run_tasks(tasks)
        assert [r.trials for r in results] == [5, 5]

    def test_mismatched_per_trial_option_is_rejected(self, queries):
        spec, _ = shardable_specs(queries)["sparse-vector"]
        with pytest.raises(ValueError, match="leading axis"):
            make_tasks(
                spec,
                engine="batch",
                trials=10,
                seed=0,
                chunk_trials=5,
                options={"thresholds": np.zeros(7)},
            )

    @pytest.mark.parametrize(
        "threshold",
        [np.float64(250.0), np.asarray(250.0)],
        ids=["numpy-scalar", "zero-d-array"],
    )
    def test_numpy_scalar_options_serialize_and_execute(self, queries, threshold):
        """Regression: numpy scalar option values (a user-passed np.float64,
        or the value[()] a 0-d thresholds array becomes in _slice_options)
        used to reach json.dumps unconverted and raise TypeError."""
        spec = SparseVectorSpec(
            queries=queries, epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        tasks = make_tasks(
            spec,
            engine="batch",
            trials=10,
            seed=6,
            chunk_trials=5,
            options={"thresholds": threshold},
        )
        for task in tasks:
            restored = ShardTask.from_json(task.to_json())  # used to raise
            value = restored.options["thresholds"]
            assert isinstance(value, float) and value == 250.0
        # And the whole round trip executes: through the process pool, the
        # scalar-threshold run is bit-identical to its plain-float oracle.
        with WorkerPool(workers=2) as pool:
            sharded = merge_results(pool.run_tasks(tasks))
        oracle = merge_results(
            SerialPool().run_tasks(
                make_tasks(
                    spec,
                    engine="batch",
                    trials=10,
                    seed=6,
                    chunk_trials=5,
                    options={"thresholds": 250.0},
                )
            )
        )
        assert_results_identical(sharded, oracle)


class TestMergeResults:
    def test_merge_of_incompatible_results_is_rejected(self, queries):
        spec_a, _ = shardable_specs(queries)["noisy-top-k"]
        spec_b, _ = shardable_specs(queries)["laplace"]
        a = run(spec_a, trials=4, rng=0)
        b = run(spec_b, trials=4, rng=0)
        with pytest.raises(ShardMergeError):
            merge_results([a, b])

    def test_merge_of_nothing_is_rejected(self):
        with pytest.raises(ShardMergeError):
            merge_results([])

    def test_merge_single_result_is_identity(self, queries):
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        result = run(spec, trials=4, rng=0)
        assert merge_results([result]) is result

    def test_merge_sums_epsilon_accounting(self, queries):
        spec, engine = shardable_specs(queries)["adaptive-svt"]
        chunks = plain_chunk_runs(spec, engine, TRIALS, 5, CHUNK)
        merged = merge_results(chunks)
        assert np.sum(merged.epsilon_consumed) == pytest.approx(
            sum(float(np.sum(r.epsilon_consumed)) for r in chunks)
        )

    def test_merge_rejects_extra_disagreement(self, queries):
        """Regression: merge_results silently kept only the first shard's
        ``extra``, masking merges of incompatible runs; every other scalar
        field was already checked."""
        import dataclasses

        spec, _ = shardable_specs(queries)["noisy-top-k"]
        a = run(spec, trials=4, rng=0)
        b = run(spec, trials=4, rng=1)
        tampered = dataclasses.replace(b, extra={**b.extra, "scale": -1.0})
        with pytest.raises(ShardMergeError, match="extra"):
            merge_results([a, tampered])

    def test_merge_keeps_agreeing_extra(self, queries):
        spec, engine = shardable_specs(queries)["adaptive-svt"]
        chunks = plain_chunk_runs(spec, engine, TRIALS, 5, CHUNK)
        merged = merge_results(chunks)
        assert merged.extra == chunks[0].extra

    def test_budget_charge_matches_sum_over_shards(self, queries):
        from repro.accounting.budget import BudgetOdometer

        spec, engine = shardable_specs(queries)["adaptive-svt"]
        budget = BudgetOdometer(float(TRIALS) * spec.epsilon)
        result = run(
            spec,
            engine=engine,
            trials=TRIALS,
            rng=1,
            shards=2,
            chunk_trials=CHUNK,
            budget=budget,
        )
        assert budget.spent == pytest.approx(float(np.sum(result.epsilon_consumed)))


# ---------------------------------------------------------------------------
# worker-pool shutdown semantics
# ---------------------------------------------------------------------------


class TestPoolFailFast:
    """Regression: WorkerPool.close() used to call shutdown() without
    cancel_futures, so a failing chunk made run_sharded's ``finally`` wait
    for every still-queued chunk before propagating the error."""

    def test_close_cancels_queued_futures(self, queries, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        recorded = {}
        real_shutdown = ProcessPoolExecutor.shutdown

        def spy(self, wait=True, *, cancel_futures=False):
            recorded["cancel_futures"] = cancel_futures
            return real_shutdown(self, wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(ProcessPoolExecutor, "shutdown", spy)
        spec, _ = shardable_specs(queries)["noisy-top-k"]
        pool = WorkerPool(workers=1)
        pool.run_tasks(make_tasks(spec, engine="batch", trials=4, seed=0))
        pool.close()
        assert recorded["cancel_futures"] is True

    def test_failing_chunk_propagates_without_draining_the_queue(self, queries):
        """A first chunk with an invalid engine raises immediately; the 32
        slow queued chunks behind it must be dropped, not awaited, on the
        error path."""
        import dataclasses
        import time

        counts = np.random.default_rng(0).uniform(0, 10_000, 2_000)
        spec = AdaptiveSvtSpec(
            queries=counts, epsilon=1.0, threshold=9_500.0, k=25, monotonic=True
        )
        slow_tasks = make_tasks(
            spec, engine="batch", trials=64_000, seed=0, chunk_trials=2_000
        )
        # Calibrate against this machine instead of a wall-clock constant:
        # one in-process chunk approximates a worker-side chunk, so the
        # bound below scales with however slow the runner is.
        start = time.monotonic()
        run(spec, trials=2_000, rng=0)
        chunk_cost = time.monotonic() - start
        bad_first = dataclasses.replace(slow_tasks[0], engine="gpu")
        start = time.monotonic()
        with pytest.raises(ValueError, match="engine"):
            run_sharded_tasks = [bad_first] + slow_tasks
            with WorkerPool(workers=1) as pool:
                pool.run_tasks(run_sharded_tasks)
        elapsed = time.monotonic() - start
        # Failing fast pays pool startup plus at most a couple of in-flight
        # chunks; draining the queue would pay all 32.  The bound sits far
        # from both: generous startup allowance + 6 chunks' compute.
        assert elapsed < 3.0 + 6 * chunk_cost, (
            f"error path drained the queue ({elapsed:.1f}s, "
            f"one chunk costs {chunk_cost:.2f}s)"
        )
