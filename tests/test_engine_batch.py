"""Equivalence and behaviour tests for the vectorized batch engine.

The central contract: under a shared explicit noise matrix, the batch
runners reproduce the per-trial reference implementations *exactly* --
selected indices, released gaps, branch assignments, processed prefixes and
consumed budgets are all bit-identical.
"""

import numpy as np
import pytest

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.engine.batch import (
    BatchExecutionEngine,
    batch_adaptive_svt,
    batch_noisy_top_k,
    batch_pick_thresholds,
    batch_select_and_measure_svt,
    batch_select_and_measure_top_k,
    batch_sparse_vector,
)
from repro.mechanisms.noisy_max import NoisyTopK
from repro.mechanisms.results import BatchResult
from repro.mechanisms.sparse_vector import (
    SparseVector,
    SparseVectorWithGap,
    SvtBranch,
)

TRIALS = 64
NUM_QUERIES = 120


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(42)
    return np.sort(rng.uniform(0.0, 500.0, NUM_QUERIES))[::-1].copy()


@pytest.fixture(scope="module")
def noise_rng():
    return np.random.default_rng(7)


class TestNoisyTopKEquivalence:
    @pytest.mark.parametrize("monotonic", [True, False])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_with_gap_matches_reference_exactly(self, values, k, monotonic):
        mech = NoisyTopKWithGap(epsilon=0.5, k=k, monotonic=monotonic)
        noise = np.random.default_rng(k).laplace(0.0, mech.scale, (TRIALS, values.size))
        batch = batch_noisy_top_k(mech, values, TRIALS, noise=noise)
        for b in range(TRIALS):
            reference = mech.select(values, noise=noise[b])
            assert batch.indices[b].tolist() == reference.indices
            np.testing.assert_array_equal(batch.gaps[b], reference.gaps)
            assert batch.epsilon_spent[b] == reference.metadata.epsilon_spent

    def test_gap_free_variant_matches_reference(self, values):
        mech = NoisyTopK(epsilon=1.0, k=10, monotonic=True)
        noise = np.random.default_rng(3).laplace(0.0, mech.scale, (TRIALS, values.size))
        batch = batch_noisy_top_k(mech, values, TRIALS, noise=noise)
        assert batch.gaps.shape == (TRIALS, 0)
        for b in range(TRIALS):
            reference = mech.select(values, noise=noise[b])
            assert batch.indices[b].tolist() == reference.indices

    def test_seeded_rng_stream_matches_per_trial_loop(self, values):
        """One (B, n) draw consumes the same stream as B sequential draws.

        Holds in the stream-preserving mode (``fast_noise=False``); the
        default fast sampler shares the distribution but not the stream.
        """
        mech = NoisyTopKWithGap(epsilon=0.5, k=5, monotonic=True)
        batch = batch_noisy_top_k(mech, values, TRIALS, rng=123, fast_noise=False)
        loop_rng = np.random.default_rng(123)
        for b in range(TRIALS):
            reference = mech.select(values, rng=loop_rng)
            assert batch.indices[b].tolist() == reference.indices
            np.testing.assert_array_equal(batch.gaps[b], reference.gaps)

    def test_rejects_too_few_queries(self):
        mech = NoisyTopKWithGap(epsilon=0.5, k=5)
        with pytest.raises(ValueError):
            batch_noisy_top_k(mech, np.arange(5.0), 4)


class TestSparseVectorEquivalence:
    @pytest.mark.parametrize("with_gap", [False, True])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_reference_exactly(self, values, noise_rng, k, with_gap):
        cls = SparseVectorWithGap if with_gap else SparseVector
        mech = cls(epsilon=0.7, threshold=250.0, k=k, monotonic=True)
        threshold_noise = noise_rng.laplace(0.0, mech.threshold_scale, TRIALS)
        query_noise = noise_rng.laplace(0.0, mech.query_scale, (TRIALS, values.size))
        batch = batch_sparse_vector(
            mech, values, TRIALS,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        for b in range(TRIALS):
            reference = mech.run(
                values, threshold_noise=threshold_noise[b], query_noise=query_noise[b]
            )
            assert batch.trial_indices(b).tolist() == reference.above_indices
            assert batch.processed[b] == reference.num_processed
            assert batch.epsilon_spent[b] == reference.metadata.epsilon_spent
            if with_gap:
                np.testing.assert_array_equal(batch.trial_gaps(b), reference.gaps)

    def test_per_trial_thresholds(self, values, noise_rng):
        mech = SparseVectorWithGap(epsilon=0.7, threshold=0.0, k=5, monotonic=True)
        thresholds = np.linspace(100.0, 400.0, TRIALS)
        threshold_noise = noise_rng.laplace(0.0, mech.threshold_scale, TRIALS)
        query_noise = noise_rng.laplace(0.0, mech.query_scale, (TRIALS, values.size))
        batch = batch_sparse_vector(
            mech, values, TRIALS, thresholds=thresholds,
            threshold_noise=threshold_noise, query_noise=query_noise,
        )
        for b in (0, TRIALS // 2, TRIALS - 1):
            per_trial = SparseVectorWithGap(
                epsilon=0.7, threshold=float(thresholds[b]), k=5, monotonic=True
            )
            reference = per_trial.run(
                values, threshold_noise=threshold_noise[b], query_noise=query_noise[b]
            )
            assert batch.trial_indices(b).tolist() == reference.above_indices
            np.testing.assert_array_equal(batch.trial_gaps(b), reference.gaps)

    def test_answer_cap_respected(self, values):
        mech = SparseVectorWithGap(epsilon=0.7, threshold=50.0, k=3, monotonic=True)
        batch = batch_sparse_vector(mech, values, TRIALS, rng=0)
        assert np.all(batch.num_answered <= 3)
        assert np.all(batch.epsilon_spent <= mech.epsilon + 1e-12)


class TestAdaptiveSvtEquivalence:
    @pytest.mark.parametrize("max_answers", [None, 5])
    @pytest.mark.parametrize("k", [3, 10])
    def test_matches_reference_exactly(self, values, noise_rng, k, max_answers):
        mech = AdaptiveSparseVectorWithGap(
            epsilon=0.7, threshold=250.0, k=k, monotonic=True, max_answers=max_answers
        )
        cfg = mech.config
        threshold_noise = noise_rng.laplace(0.0, cfg.threshold_scale, TRIALS)
        top_noise = noise_rng.laplace(0.0, cfg.top_scale, (TRIALS, values.size))
        middle_noise = noise_rng.laplace(0.0, cfg.middle_scale, (TRIALS, values.size))
        batch = batch_adaptive_svt(
            mech, values, TRIALS,
            threshold_noise=threshold_noise,
            top_noise=top_noise,
            middle_noise=middle_noise,
        )
        branch_code = {
            SvtBranch.TOP: BatchResult.BRANCH_TOP,
            SvtBranch.MIDDLE: BatchResult.BRANCH_MIDDLE,
            SvtBranch.BOTTOM: BatchResult.BRANCH_BOTTOM,
        }
        for b in range(TRIALS):
            reference = mech.run(
                values,
                threshold_noise=threshold_noise[b],
                top_noise=top_noise[b],
                middle_noise=middle_noise[b],
            )
            assert batch.trial_indices(b).tolist() == reference.above_indices
            assert batch.processed[b] == reference.num_processed
            assert batch.epsilon_spent[b] == reference.metadata.epsilon_spent
            np.testing.assert_array_equal(batch.trial_gaps(b), reference.gaps)
            for outcome in reference.outcomes:
                assert batch.branches[b, outcome.index] == branch_code[outcome.branch]

    def test_budget_never_exceeded(self, values):
        mech = AdaptiveSparseVectorWithGap(
            epsilon=0.7, threshold=100.0, k=5, monotonic=True
        )
        batch = batch_adaptive_svt(mech, values, TRIALS, rng=1)
        assert np.all(batch.epsilon_spent <= mech.epsilon + 1e-9)
        assert np.all(batch.remaining_budget_fraction >= 0.0)


class TestBatchResultContainer:
    def test_padding_helpers(self, values):
        mech = SparseVectorWithGap(epsilon=0.7, threshold=250.0, k=5, monotonic=True)
        batch = batch_sparse_vector(mech, values, TRIALS, rng=5)
        for b in range(TRIALS):
            idx = batch.trial_indices(b)
            gaps = batch.trial_gaps(b)
            assert idx.size == gaps.size == batch.num_answered[b]
        assert batch.trials == TRIALS

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchResult(
                mechanism="x", epsilon=1.0,
                epsilon_spent=np.ones(3), indices=np.zeros(3), gaps=np.zeros((3, 0)),
            )
        with pytest.raises(ValueError):
            BatchResult(
                mechanism="x", epsilon=1.0,
                epsilon_spent=np.ones(2), indices=np.zeros((3, 1)),
                gaps=np.zeros((3, 0)),
            )


class TestSelectAndMeasureBatch:
    def test_top_k_statistics_match_reference_protocol(self, values):
        from repro.core.select_measure import select_and_measure_top_k

        batch = batch_select_and_measure_top_k(
            values, epsilon=0.7, k=10, trials=400, rng=0
        )
        batch_improvement = 1.0 - np.mean(batch.fused_squared_errors()) / np.mean(
            batch.baseline_squared_errors()
        )
        rng = np.random.default_rng(0)
        baseline, fused = [], []
        for _ in range(400):
            run = select_and_measure_top_k(values, epsilon=0.7, k=10, rng=rng)
            baseline.extend(run.baseline_squared_errors())
            fused.extend(run.fused_squared_errors())
        loop_improvement = 1.0 - np.mean(fused) / np.mean(baseline)
        assert batch_improvement == pytest.approx(loop_improvement, abs=0.1)

    def test_svt_requires_thresholds(self, values):
        with pytest.raises(ValueError, match="thresholds"):
            batch_select_and_measure_svt(
                values, epsilon=0.7, k=5, thresholds=None, trials=8, rng=0
            )

    def test_svt_masks_empty_trials(self, values):
        thresholds = np.full(TRIALS, 10_000.0)  # far above every count
        batch = batch_select_and_measure_svt(
            values, epsilon=0.7, k=5, thresholds=thresholds, trials=TRIALS, rng=0
        )
        assert batch.baseline_squared_errors().size == 0
        assert batch.fused_squared_errors().size == 0

    def test_svt_adaptive_produces_finite_estimates(self, values):
        thresholds = batch_pick_thresholds(values, 5, TRIALS, rng=3)
        batch = batch_select_and_measure_svt(
            values, epsilon=0.7, k=5, thresholds=thresholds, trials=TRIALS,
            adaptive=True, rng=4,
        )
        assert batch.mask is not None
        assert np.isfinite(batch.fused[batch.mask]).all()
        assert np.isfinite(batch.baseline_squared_errors()).all()


class TestDrawCountingAndBudgets:
    def test_svt_runner_counts_draws_through_random_source(self, values):
        from repro.primitives.rng import RandomSource

        source = RandomSource(0)
        mech = SparseVectorWithGap(epsilon=0.7, threshold=250.0, k=5, monotonic=True)
        result = batch_sparse_vector(mech, values, 8, rng=source)
        # One threshold variate per trial plus one query variate per scanned
        # stream position of each still-active trial.
        assert source.draws >= 8 + int(result.processed.sum())

    def test_adaptive_runner_counts_draws_through_random_source(self, values):
        from repro.primitives.rng import RandomSource

        source = RandomSource(0)
        mech = AdaptiveSparseVectorWithGap(
            epsilon=0.7, threshold=250.0, k=5, monotonic=True
        )
        result = batch_adaptive_svt(mech, values, 8, rng=source)
        assert source.draws >= 8 + 2 * int(result.processed.sum())

    def test_empty_trials_not_charged_for_measurement(self, values):
        thresholds = np.full(TRIALS, 10_000.0)  # no trial answers anything
        batch = batch_select_and_measure_svt(
            values, epsilon=0.8, k=5, thresholds=thresholds, trials=TRIALS, rng=0
        )
        # Only the selection half's threshold charge is consumed; the
        # measurement half is never released for empty runs.
        assert np.all(batch.epsilon_spent < 0.4)


class TestBatchExecutionEngine:
    def test_dispatch(self, values):
        engine = BatchExecutionEngine(rng=0)
        top_k = engine.run(NoisyTopKWithGap(epsilon=0.5, k=3), values, trials=8)
        assert top_k.indices.shape == (8, 3)
        svt = engine.run(
            SparseVector(epsilon=0.5, threshold=250.0, k=3), values, trials=8
        )
        assert svt.above.shape == (8, values.size)
        adaptive = engine.run(
            AdaptiveSparseVectorWithGap(epsilon=0.5, threshold=250.0, k=3),
            values, trials=8,
        )
        assert adaptive.branches is not None

    def test_dispatch_rejects_unknown(self, values):
        engine = BatchExecutionEngine(rng=0)
        with pytest.raises(TypeError):
            engine.run(object(), values, trials=4)

    def test_pick_thresholds_in_range(self, values):
        engine = BatchExecutionEngine(rng=0)
        thresholds = engine.pick_thresholds(values, k=10, trials=100)
        sorted_desc = np.sort(values)[::-1]
        assert np.all(thresholds >= sorted_desc[79])
        assert np.all(thresholds <= sorted_desc[19])
