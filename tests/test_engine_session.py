"""Tests for the budget-tracked private analytics session engine."""

import numpy as np
import pytest

from repro.accounting.budget import BudgetExceededError
from repro.engine.session import PrivateAnalyticsSession


@pytest.fixture
def session(small_database):
    return PrivateAnalyticsSession(small_database, total_epsilon=2.0, rng=0)


class TestSessionLifecycle:
    def test_initial_budget_state(self, session):
        assert session.total_epsilon == 2.0
        assert session.spent_epsilon == 0.0
        assert session.remaining_epsilon == 2.0

    def test_rejects_nonpositive_budget(self, small_database):
        with pytest.raises(ValueError):
            PrivateAnalyticsSession(small_database, total_epsilon=0.0)

    def test_report_tracks_questions(self, session):
        session.top_k_items(k=3, epsilon=0.5)
        session.measure_items(session._items[:2], epsilon=0.25)
        report = session.report()
        assert report.total_epsilon == 2.0
        assert report.spent == pytest.approx(0.75)
        assert report.remaining == pytest.approx(1.25)
        assert len(report.questions) == 2
        assert report.questions[0]["label"] == "top_3_items"


class TestTopKQuestions:
    def test_selection_only(self, session, small_database):
        answer = session.top_k_items(k=5, epsilon=0.5)
        assert len(answer.items) == 5
        assert answer.gaps.shape == (5,)
        assert answer.estimates is None
        assert answer.epsilon_charged == pytest.approx(0.5)
        assert set(answer.items).issubset(set(small_database.unique_items()))

    def test_selection_with_measurement(self, session):
        answer = session.top_k_items(k=4, epsilon=1.0, measure=True)
        assert answer.estimates is not None
        assert answer.estimates.shape == (4,)

    def test_default_epsilon_is_quarter_of_total(self, session):
        answer = session.top_k_items(k=2)
        assert answer.epsilon_charged == pytest.approx(0.5)

    def test_selects_truly_frequent_items(self, small_database):
        session = PrivateAnalyticsSession(small_database, total_epsilon=8.0, rng=1)
        answer = session.top_k_items(k=3, epsilon=4.0)
        true_top = {item for item, _ in small_database.top_items(6)}
        assert len(set(answer.items) & true_top) >= 2


class TestAboveThresholdQuestions:
    def test_basic_answer(self, session, small_database):
        threshold = small_database.kth_largest_count(15)
        answer = session.items_above(threshold=threshold, k=5, epsilon=0.8)
        assert answer.epsilon_charged <= 0.8 + 1e-9
        assert answer.estimates.shape == (len(answer.items),)
        assert answer.lower_bounds is None

    def test_confidence_bounds_attached(self, session, small_database):
        threshold = small_database.kth_largest_count(15)
        answer = session.items_above(
            threshold=threshold, k=5, epsilon=0.8, confidence=0.9
        )
        assert answer.lower_bounds is not None
        assert answer.lower_bounds.shape == (len(answer.items),)
        assert np.all(answer.lower_bounds <= answer.estimates + 1e-9)

    def test_only_consumed_budget_is_charged(self, small_database):
        # With a very low threshold all answers come from the cheap top
        # branch, so the charge should be well below the reservation.
        session = PrivateAnalyticsSession(small_database, total_epsilon=2.0, rng=3)
        answer = session.items_above(threshold=1.0, k=5, epsilon=1.0)
        assert answer.epsilon_charged < 1.0
        assert session.spent_epsilon == pytest.approx(answer.epsilon_charged)


class TestMeasureQuestions:
    def test_measures_requested_items(self, session, small_database):
        items = [item for item, _ in small_database.top_items(3)]
        histogram = small_database.item_histogram()
        released = session.measure_items(items, epsilon=1.0)
        assert set(released) == set(items)
        for item, value in released.items():
            assert abs(value - histogram[item]) < 200.0

    def test_unknown_item_rejected(self, session):
        with pytest.raises(KeyError):
            session.measure_items([10**9], epsilon=0.5)

    def test_empty_request_rejected(self, session):
        with pytest.raises(ValueError):
            session.measure_items([], epsilon=0.5)


class TestBudgetEnforcement:
    def test_over_budget_question_refused(self, session):
        with pytest.raises(BudgetExceededError):
            session.top_k_items(k=3, epsilon=5.0)

    def test_budget_exhaustion_across_questions(self, session):
        session.top_k_items(k=3, epsilon=1.0)
        session.top_k_items(k=3, epsilon=0.9)
        with pytest.raises(BudgetExceededError):
            session.top_k_items(k=3, epsilon=0.5)
        # The failed question must not have been charged.
        assert session.spent_epsilon == pytest.approx(1.9)

    def test_nonpositive_question_budget_rejected(self, session):
        with pytest.raises(ValueError):
            session.top_k_items(k=3, epsilon=0.0)

    def test_adaptive_savings_fund_additional_questions(self, small_database):
        # Reserve half the budget for an above-threshold question whose
        # answers mostly come from the cheap branch; the savings must leave
        # room for a follow-up question that a full charge would have blocked.
        session = PrivateAnalyticsSession(small_database, total_epsilon=1.0, rng=5)
        first = session.items_above(threshold=1.0, k=4, epsilon=0.5)
        assert first.epsilon_charged < 0.5
        # Spend everything that remains -- more than the 0.5 that would have
        # been left had the full reservation been charged.
        follow_up_budget = session.remaining_epsilon
        assert follow_up_budget > 0.5
        session.top_k_items(k=2, epsilon=follow_up_budget)
        assert session.spent_epsilon <= 1.0 + 1e-9


class TestSimulation:
    def test_simulate_top_k_consumes_no_budget(self, session):
        report = session.simulate_top_k_items(k=3, trials=64, rng=0)
        assert session.spent_epsilon == 0.0
        assert report["trials"] == 64.0
        assert report["baseline_mse"] > 0.0
        assert report["fused_mse"] > 0.0

    def test_simulate_top_k_predicts_improvement(self, session):
        report = session.simulate_top_k_items(k=5, trials=400, rng=1)
        # With the 50/50 budget split on counting queries the BLUE fusion
        # improves the MSE by roughly (k-1)/2k; just require a clear gain.
        assert report["improvement_percent"] > 10.0

    def test_simulate_items_above_consumes_no_budget(self, session):
        report = session.simulate_items_above(threshold=2.0, k=3, trials=64, rng=2)
        assert session.spent_epsilon == 0.0
        assert report["expected_answers"] >= 0.0
        assert 0.0 <= report["expected_remaining_fraction"] <= 1.0
        assert report["expected_epsilon_spent"] <= session.total_epsilon / 4.0 + 1e-9

    def test_simulation_leaves_session_stream_untouched(self, small_database):
        a = PrivateAnalyticsSession(small_database, total_epsilon=2.0, rng=7)
        b = PrivateAnalyticsSession(small_database, total_epsilon=2.0, rng=7)
        a.simulate_top_k_items(k=3, trials=16, rng=0)
        answer_a = a.top_k_items(k=3)
        answer_b = b.top_k_items(k=3)
        assert answer_a.items == answer_b.items
        np.testing.assert_array_equal(answer_a.gaps, answer_b.gaps)
