"""Tests for the command-line experiment runner."""

import io
import json

import pytest

from repro.api import AdaptiveSvtSpec, NoisyTopKSpec
from repro.evaluation.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.dataset == "BMS-POS"
        assert args.epsilon == 0.7
        assert args.trials == 100
        assert args.seed == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--dataset", "netflix"])

    def test_validation_of_numeric_arguments(self):
        with pytest.raises(SystemExit):
            main(["figure1", "--trials", "0"])
        with pytest.raises(SystemExit):
            main(["figure1", "--epsilon", "-1"])
        with pytest.raises(SystemExit):
            main(["figure2", "--k", "0"])


class TestExecution:
    def test_datasets_command_prints_table(self, capsys):
        exit_code = main(["datasets", "--scale", "0.002", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Section 7.1 dataset statistics" in captured
        assert "BMS-POS" in captured and "kosarak" in captured

    def test_figure3_command_small_run(self, capsys):
        exit_code = main(
            [
                "figure3",
                "--dataset",
                "T40I10D100K",
                "--trials",
                "3",
                "--scale",
                "0.01",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 3" in captured
        assert "adaptive_answers" in captured

    def test_figure1_with_plot_flag(self, capsys):
        exit_code = main(
            [
                "figure1",
                "--dataset",
                "T40I10D100K",
                "--trials",
                "2",
                "--scale",
                "0.01",
                "--plot",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "legend:" in captured
        assert "improvement_percent" in captured

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        exit_code = main(["datasets", "--scale", "0.002", "--output", str(target)])
        assert exit_code == 0
        assert "dataset" in target.read_text()
        # Nothing is printed to stdout when --output is used.
        assert capsys.readouterr().out == ""


class TestRunSpec:
    @pytest.fixture
    def top_k_spec_file(self, tmp_path):
        spec = NoisyTopKSpec(
            queries=[120.0, 90.0, 85.0, 30.0, 5.0], epsilon=1.0, k=2, monotonic=True
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return path

    @pytest.mark.parametrize("engine", ["batch", "reference"])
    def test_executes_spec_file_via_facade(self, top_k_spec_file, capsys, engine):
        exit_code = main(
            [
                "run-spec",
                str(top_k_spec_file),
                "--engine",
                engine,
                "--trials",
                "16",
                "--seed",
                "0",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert f"run-spec: noisy-top-k via {engine}" in captured
        assert "noisy-top-k-with-gap" in captured
        assert "mean_epsilon_consumed" in captured
        assert "trial 0 answered indices" in captured

    def test_adaptive_spec_reports_consumed_budget(self, tmp_path, capsys):
        spec = AdaptiveSvtSpec(
            queries=[120.0, 90.0, 85.0, 30.0, 5.0],
            epsilon=1.0,
            threshold=10.0,
            k=2,
            monotonic=True,
        )
        path = tmp_path / "adaptive.json"
        path.write_text(json.dumps(spec.to_dict()))
        exit_code = main(["run-spec", str(path), "--trials", "8", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "adaptive-sparse-vector-with-gap" in captured

    def test_requires_spec_path(self):
        with pytest.raises(SystemExit):
            main(["run-spec"])

    def test_spec_path_only_valid_for_run_spec(self, top_k_spec_file):
        with pytest.raises(SystemExit):
            main(["figure1", str(top_k_spec_file)])

    def test_rejects_unknown_engine(self, top_k_spec_file):
        with pytest.raises(SystemExit):
            main(["run-spec", str(top_k_spec_file), "--engine", "gpu"])

    def test_engine_flag_only_valid_for_run_spec(self):
        # The figure runners always use the batch engine; accepting --engine
        # and ignoring it would silently run the wrong engine.
        with pytest.raises(SystemExit):
            main(["figure1", "--engine", "reference"])

    def test_rejects_invalid_spec_payload(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "no-such-mechanism"}))
        with pytest.raises(SystemExit) as excinfo:
            main(["run-spec", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1
        assert "no-such-mechanism" in err

    def test_rejects_missing_file(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-spec", str(tmp_path / "absent.json")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    def test_rejects_directory_spec_path_cleanly(self, tmp_path, capsys):
        # IsADirectoryError is an OSError but not a FileNotFoundError; it
        # must exit 2 with a one-line message, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["run-spec", str(tmp_path)])
        assert excinfo.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_rejects_malformed_json_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"kind": "noisy-top-k", ')
        with pytest.raises(SystemExit) as excinfo:
            main(["run-spec", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    def test_rejects_non_mapping_payload_cleanly(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit) as excinfo:
            main(["run-spec", str(path)])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_reference_only_spec_on_batch_engine_exits_cleanly(self, tmp_path, capsys):
        from repro.api import SvtVariantSpec

        spec = SvtVariantSpec(
            queries=[120.0, 90.0, 85.0], epsilon=1.0, variant=3, threshold=10.0, k=1
        )
        path = tmp_path / "variant.json"
        path.write_text(spec.to_json())
        with pytest.raises(SystemExit):
            main(["run-spec", str(path), "--engine", "batch"])
        assert "error:" in capsys.readouterr().err
        # The reference engine runs it fine.
        assert main(["run-spec", str(path), "--engine", "reference", "--seed", "0"]) == 0


class TestRunSpecDispatch:
    """run-spec --shards / --cache: the CLI face of repro.dispatch."""

    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = NoisyTopKSpec(
            queries=[120.0, 90.0, 85.0, 30.0, 5.0], epsilon=1.0, k=2, monotonic=True
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return path

    def test_sharded_run_matches_single_shard_run(self, spec_file, capsys):
        argv = ["run-spec", str(spec_file), "--trials", "32", "--seed", "0",
                "--chunk-trials", "8"]
        assert main(argv + ["--shards", "1"]) == 0
        single = capsys.readouterr().out
        assert main(argv + ["--shards", "3"]) == 0
        assert capsys.readouterr().out == single

    def test_cached_rerun_reproduces_the_output(self, spec_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "run-spec", str(spec_file), "--trials", "16", "--seed", "1",
            "--cache", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert any(cache_dir.glob("*.npz")), "miss should have stored an entry"
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_dispatch_flags_only_valid_for_run_spec(self):
        for flag, value in (("--shards", "2"), ("--cache", "dir"), ("--chunk-trials", "8")):
            with pytest.raises(SystemExit):
                main(["figure1", flag, value])

    def test_rejects_invalid_shard_and_chunk_counts(self, spec_file):
        with pytest.raises(SystemExit):
            main(["run-spec", str(spec_file), "--shards", "0"])
        with pytest.raises(SystemExit):
            main(["run-spec", str(spec_file), "--chunk-trials", "0"])

    def test_internal_errors_in_figure_commands_are_not_swallowed(self, monkeypatch):
        # The one-line exit-2 handling is for user-caused errors; an internal
        # ValueError in a figure runner must keep its traceback.
        from repro.evaluation import cli as cli_module

        def broken(args, stream):
            raise ValueError("internal bug")

        monkeypatch.setitem(cli_module._COMMANDS, "figure1", broken)
        with pytest.raises(ValueError, match="internal bug"):
            main(["figure1"])


class TestChaosVerb:
    def test_requires_root(self):
        with pytest.raises(SystemExit):
            main(["chaos"])

    def test_refuses_a_non_empty_root(self, tmp_path, capsys):
        (tmp_path / "svc").mkdir()
        (tmp_path / "svc" / "jobs").mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--root", str(tmp_path / "svc")])
        assert excinfo.value.code == 2
        assert "fresh root" in capsys.readouterr().err

    def test_rejects_flags_of_other_commands(self, tmp_path):
        for flag, value in (("--grant", "1.0"), ("--wait", "5"), ("--shards", "2")):
            with pytest.raises(SystemExit):
                main(["chaos", "--root", str(tmp_path / "svc"), flag, value])
