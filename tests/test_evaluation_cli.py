"""Tests for the command-line experiment runner."""

import io

import pytest

from repro.evaluation.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.dataset == "BMS-POS"
        assert args.epsilon == 0.7
        assert args.trials == 100
        assert args.seed == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--dataset", "netflix"])

    def test_validation_of_numeric_arguments(self):
        with pytest.raises(SystemExit):
            main(["figure1", "--trials", "0"])
        with pytest.raises(SystemExit):
            main(["figure1", "--epsilon", "-1"])
        with pytest.raises(SystemExit):
            main(["figure2", "--k", "0"])


class TestExecution:
    def test_datasets_command_prints_table(self, capsys):
        exit_code = main(["datasets", "--scale", "0.002", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Section 7.1 dataset statistics" in captured
        assert "BMS-POS" in captured and "kosarak" in captured

    def test_figure3_command_small_run(self, capsys):
        exit_code = main(
            [
                "figure3",
                "--dataset",
                "T40I10D100K",
                "--trials",
                "3",
                "--scale",
                "0.01",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 3" in captured
        assert "adaptive_answers" in captured

    def test_figure1_with_plot_flag(self, capsys):
        exit_code = main(
            [
                "figure1",
                "--dataset",
                "T40I10D100K",
                "--trials",
                "2",
                "--scale",
                "0.01",
                "--plot",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "legend:" in captured
        assert "improvement_percent" in captured

    def test_output_file_written(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        exit_code = main(["datasets", "--scale", "0.002", "--output", str(target)])
        assert exit_code == 0
        assert "dataset" in target.read_text()
        # Nothing is printed to stdout when --output is used.
        assert capsys.readouterr().out == ""
