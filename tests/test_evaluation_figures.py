"""Tests for the figure/table regenerators (small, fast configurations)."""

import numpy as np
import pytest

from repro.evaluation.figures import (
    dataset_statistics_table,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_series_table,
)


class TestRenderSeriesTable:
    def test_renders_columns_and_rows(self):
        rows = [{"k": 2, "value": 1.2345}, {"k": 5, "value": 2.0}]
        table = render_series_table(rows)
        assert "k" in table and "value" in table
        assert "1.234" in table
        assert len(table.splitlines()) == 4

    def test_empty_rows(self):
        assert render_series_table([]) == "(no data)"

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        table = render_series_table(rows, columns=["b", "a"])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_column_rendered_empty(self):
        rows = [{"a": 1}]
        table = render_series_table(rows, columns=["a", "zzz"])
        assert "zzz" in table


class TestDatasetStatisticsTable:
    def test_contains_all_three_datasets(self):
        rows = dataset_statistics_table(scale=0.002, rng=0)
        assert {row["dataset"] for row in rows} == {"BMS-POS", "kosarak", "T40I10D100K"}
        for row in rows:
            assert row["records"] > 0
            assert row["unique_items"] > 0


@pytest.fixture(scope="module")
def tiny_dataset(small_database_module=None):
    from repro.datasets.generators import generate_zipf_transactions

    return generate_zipf_transactions(1500, 150, avg_length=6.0, rng=3)


class TestFigureData:
    def test_figure1_shapes_and_trend(self, tiny_dataset):
        data = figure1_data(tiny_dataset, epsilon=0.7, ks=(2, 10), trials=30, rng=0)
        assert set(data) == {"svt", "top_k"}
        for series in data.values():
            assert [row["k"] for row in series] == [2, 10]
        # Theoretical improvement grows with k for both mechanisms.
        assert (
            data["top_k"][1]["theoretical_percent"]
            > data["top_k"][0]["theoretical_percent"]
        )
        assert (
            data["svt"][1]["theoretical_percent"] > data["svt"][0]["theoretical_percent"]
        )

    def test_figure2_flat_theory_across_epsilon(self, tiny_dataset):
        data = figure2_data(
            tiny_dataset, k=5, epsilons=(0.5, 1.0), trials=30, rng=0
        )
        theory = [row["theoretical_percent"] for row in data["top_k"]]
        assert theory[0] == pytest.approx(theory[1])

    def test_figure3_rows(self, tiny_dataset):
        rows = figure3_data(tiny_dataset, epsilon=0.7, ks=(2, 6), trials=10, rng=0)
        assert [row["k"] for row in rows] == [2, 6]
        for row in rows:
            assert row["adaptive_answers"] >= row["svt_answers"] - 1e-9
            assert 0.0 <= row["svt_precision"] <= 1.0
            assert 0.0 <= row["adaptive_f_measure"] <= 1.0

    def test_figure4_rows(self, tiny_dataset):
        rows = figure4_data([tiny_dataset], epsilon=0.7, ks=(5, 10), trials=10, rng=0)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["remaining_percent"] <= 100.0
