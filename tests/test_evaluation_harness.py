"""Unit and integration tests for the Monte-Carlo experiment harness."""

import numpy as np
import pytest

from repro.evaluation.harness import (
    pick_threshold,
    run_adaptive_comparison,
    run_remaining_budget,
    run_svt_mse_improvement,
    run_top_k_mse_improvement,
)


class TestPickThreshold:
    def test_threshold_lies_between_ranks(self):
        counts = np.arange(1000.0, 0.0, -1.0)
        rng = np.random.default_rng(0)
        k = 10
        sorted_desc = np.sort(counts)[::-1]
        for _ in range(50):
            threshold = pick_threshold(counts, k, rng=rng)
            assert sorted_desc[8 * k - 1] <= threshold <= sorted_desc[2 * k - 1]

    def test_small_count_vector_falls_back_to_available_rank(self):
        counts = np.array([10.0, 9.0, 8.0])
        threshold = pick_threshold(counts, k=5, rng=0)
        assert threshold == pytest.approx(8.0)

    def test_deterministic_with_seed(self):
        counts = np.arange(500.0)
        assert pick_threshold(counts, 5, rng=3) == pick_threshold(counts, 5, rng=3)


class TestTopKMseImprovement:
    def test_improvement_close_to_theory(self, item_counts):
        result = run_top_k_mse_improvement(
            item_counts, epsilon=0.7, k=10, trials=150, rng=0
        )
        assert result.theoretical_percent == pytest.approx(45.0, abs=0.1)
        assert result.improvement_percent == pytest.approx(
            result.theoretical_percent, abs=12.0
        )

    def test_result_fields(self, item_counts):
        result = run_top_k_mse_improvement(
            item_counts, epsilon=0.5, k=3, trials=20, rng=1
        )
        assert result.k == 3
        assert result.epsilon == 0.5
        assert result.trials == 20
        assert result.baseline_mse > 0
        assert result.fused_mse > 0

    def test_explicit_theoretical_override(self, item_counts):
        result = run_top_k_mse_improvement(
            item_counts, epsilon=0.5, k=3, trials=5, rng=0, theoretical_percent=33.0
        )
        assert result.theoretical_percent == 33.0


class TestSvtMseImprovement:
    def test_improvement_positive_and_near_theory(self, item_counts):
        result = run_svt_mse_improvement(
            item_counts, epsilon=0.7, k=10, trials=150, rng=0
        )
        assert result.improvement_percent > 10.0
        assert result.improvement_percent == pytest.approx(
            result.theoretical_percent, abs=15.0
        )

    def test_adaptive_variant_also_improves(self, item_counts):
        result = run_svt_mse_improvement(
            item_counts, epsilon=0.7, k=5, trials=100, adaptive=True, rng=0
        )
        assert result.improvement_percent > 0.0

    def test_epsilon_recorded_on_result(self, item_counts):
        result = run_svt_mse_improvement(
            item_counts, epsilon=0.9, k=4, trials=20, rng=2
        )
        assert result.epsilon == 0.9
        assert result.k == 4


class TestAdaptiveComparison:
    def test_adaptive_answers_at_least_as_many(self, item_counts):
        result = run_adaptive_comparison(
            item_counts, epsilon=0.7, k=10, trials=30, rng=0
        )
        assert result.adaptive_answers >= result.svt_answers
        assert result.svt_answers <= 10.0 + 1e-9

    def test_branch_breakdown_sums_to_total(self, item_counts):
        result = run_adaptive_comparison(
            item_counts, epsilon=0.7, k=8, trials=30, rng=1
        )
        assert result.adaptive_top_answers + result.adaptive_middle_answers == (
            pytest.approx(result.adaptive_answers)
        )

    def test_precisions_high_on_separated_data(self, item_counts):
        result = run_adaptive_comparison(
            item_counts, epsilon=0.7, k=10, trials=30, rng=2
        )
        assert result.svt_precision > 0.6
        assert result.adaptive_precision > 0.6

    def test_adaptive_f_measure_not_worse(self, item_counts):
        result = run_adaptive_comparison(
            item_counts, epsilon=0.7, k=10, trials=30, rng=3
        )
        assert result.adaptive_f_measure >= result.svt_f_measure - 0.05


class TestRemainingBudget:
    def test_substantial_budget_left_on_separated_data(self, item_counts):
        result = run_remaining_budget(item_counts, epsilon=0.7, k=10, trials=30, rng=0)
        # The paper reports roughly 40%; synthetic data should land well above
        # zero and below the theoretical cap of ~50% of the query budget.
        assert 15.0 < result.remaining_percent < 60.0

    def test_result_fields(self, item_counts):
        result = run_remaining_budget(item_counts, epsilon=0.7, k=5, trials=10, rng=1)
        assert result.k == 5
        assert result.trials == 10
