"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    f_measure,
    improvement_percentage,
    mean_squared_error,
    precision_recall,
    remaining_budget_fraction,
    selection_f_measure,
)


class TestMeanSquaredError:
    def test_basic(self):
        assert mean_squared_error([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_zero_for_exact_estimates(self):
        assert mean_squared_error([3.0, 4.0], [3.0, 4.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestImprovementPercentage:
    def test_halving_error_is_fifty_percent(self):
        assert improvement_percentage(10.0, 5.0) == pytest.approx(50.0)

    def test_no_improvement_is_zero(self):
        assert improvement_percentage(10.0, 10.0) == pytest.approx(0.0)

    def test_worse_estimator_is_negative(self):
        assert improvement_percentage(10.0, 12.0) < 0.0

    def test_rejects_nonpositive_baseline(self):
        with pytest.raises(ValueError):
            improvement_percentage(0.0, 1.0)


class TestPrecisionRecall:
    def test_perfect(self):
        precision, recall = precision_recall([1, 2], [1, 2])
        assert precision == 1.0
        assert recall == 1.0

    def test_partial(self):
        precision, recall = precision_recall([1, 2, 3], [2, 3, 4, 5])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_empty_reported_has_precision_one(self):
        precision, recall = precision_recall([], [1, 2])
        assert precision == 1.0
        assert recall == 0.0

    def test_empty_actual_has_recall_one(self):
        precision, recall = precision_recall([1], [])
        assert recall == 1.0
        assert precision == 0.0


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f_measure(0.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            f_measure(1.5, 0.5)
        with pytest.raises(ValueError):
            f_measure(0.5, -0.1)

    def test_selection_f_measure_wrapper(self):
        assert selection_f_measure([1, 2], [1, 2, 3, 4]) == pytest.approx(
            f_measure(1.0, 0.5)
        )


class TestRemainingBudgetFraction:
    def test_fraction(self):
        assert remaining_budget_fraction(1.0, 0.6) == pytest.approx(0.4)

    def test_never_negative(self):
        assert remaining_budget_fraction(1.0, 1.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            remaining_budget_fraction(0.0, 0.1)
        with pytest.raises(ValueError):
            remaining_budget_fraction(1.0, -0.1)
