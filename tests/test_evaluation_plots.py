"""Tests for the ASCII plotting helpers."""

import pytest

from repro.evaluation.plots import bar_chart, line_plot


@pytest.fixture
def curve_rows():
    return [
        {"k": 2, "empirical": 25.0, "theory": 25.0},
        {"k": 5, "empirical": 38.0, "theory": 40.0},
        {"k": 10, "empirical": 44.0, "theory": 45.0},
        {"k": 25, "empirical": 47.0, "theory": 48.0},
    ]


class TestLinePlot:
    def test_contains_title_axes_and_legend(self, curve_rows):
        plot = line_plot(curve_rows, "k", ["empirical", "theory"], title="Figure 1b")
        assert "Figure 1b" in plot
        assert "x (k): 2 .. 25" in plot
        assert "legend: * empirical  o theory" in plot

    def test_markers_present_for_each_series(self, curve_rows):
        plot = line_plot(curve_rows, "k", ["empirical", "theory"])
        assert "*" in plot
        assert "o" in plot

    def test_canvas_dimensions(self, curve_rows):
        height = 8
        plot = line_plot(curve_rows, "k", ["empirical"], width=30, height=height)
        canvas_lines = [line for line in plot.splitlines() if line.startswith("|")]
        assert len(canvas_lines) == height
        assert all(len(line) == 31 for line in canvas_lines)

    def test_constant_series_does_not_crash(self):
        rows = [{"x": 1, "y": 5.0}, {"x": 2, "y": 5.0}]
        plot = line_plot(rows, "x", ["y"])
        assert "y: 5 .. 6" in plot

    def test_validation(self, curve_rows):
        with pytest.raises(ValueError):
            line_plot([], "k", ["empirical"])
        with pytest.raises(ValueError):
            line_plot(curve_rows, "k", [])
        with pytest.raises(ValueError):
            line_plot(curve_rows, "k", ["empirical"], width=5)


class TestBarChart:
    def test_bars_scale_with_values(self):
        rows = [
            {"mechanism": "svt", "answers": 10.0},
            {"mechanism": "adaptive", "answers": 20.0},
        ]
        chart = bar_chart(rows, "mechanism", "answers", width=20)
        svt_line, adaptive_line = chart.splitlines()
        assert adaptive_line.count("#") == 20
        assert svt_line.count("#") == 10

    def test_title_and_labels(self):
        rows = [{"dataset": "BMS-POS", "remaining": 40.0}]
        chart = bar_chart(rows, "dataset", "remaining", title="Figure 4")
        assert chart.splitlines()[0] == "Figure 4"
        assert "BMS-POS" in chart

    def test_zero_values_handled(self):
        rows = [{"label": "a", "value": 0.0}, {"label": "b", "value": 0.0}]
        chart = bar_chart(rows, "label", "value")
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], "label", "value")
        with pytest.raises(ValueError):
            bar_chart([{"label": "a", "value": 1.0}], "label", "value", width=2)
