"""Tests for experiment-result persistence (CSV / JSON / comparison)."""

import json

import pytest

from repro.evaluation.reporting import (
    ExperimentRecord,
    compare_series,
    read_experiment_json,
    read_rows_csv,
    write_experiment_json,
    write_rows_csv,
)


@pytest.fixture
def sample_rows():
    return [
        {"k": 2, "improvement_percent": 25.1, "theoretical_percent": 25.0},
        {"k": 10, "improvement_percent": 44.3, "theoretical_percent": 45.0},
        {"k": 25, "improvement_percent": 47.9, "theoretical_percent": 48.0},
    ]


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path, sample_rows):
        path = tmp_path / "figure1b.csv"
        write_rows_csv(sample_rows, path)
        loaded = read_rows_csv(path)
        assert len(loaded) == 3
        assert loaded[1]["k"] == pytest.approx(10.0)
        assert loaded[1]["improvement_percent"] == pytest.approx(44.3)

    def test_non_numeric_columns_survive(self, tmp_path):
        rows = [{"dataset": "BMS-POS", "k": 5, "value": 1.5}]
        path = tmp_path / "mixed.csv"
        write_rows_csv(rows, path)
        loaded = read_rows_csv(path)
        assert loaded[0]["dataset"] == "BMS-POS"
        assert loaded[0]["value"] == pytest.approx(1.5)

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows_csv([], tmp_path / "empty.csv")

    def test_extra_keys_in_later_rows_ignored(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = tmp_path / "extra.csv"
        write_rows_csv(rows, path)
        loaded = read_rows_csv(path)
        assert list(loaded[0].keys()) == ["a"]


class TestExperimentRecord:
    def test_add_series_copies_rows(self, sample_rows):
        record = ExperimentRecord(name="figure1", parameters={"epsilon": 0.7})
        record.add_series("top_k", sample_rows)
        sample_rows[0]["k"] = 999
        assert record.series["top_k"][0]["k"] == 2

    def test_dict_round_trip(self, sample_rows):
        record = ExperimentRecord(name="figure1", parameters={"epsilon": 0.7})
        record.add_series("top_k", sample_rows)
        rebuilt = ExperimentRecord.from_dict(record.to_dict())
        assert rebuilt.name == "figure1"
        assert rebuilt.parameters == {"epsilon": 0.7}
        assert rebuilt.series["top_k"] == record.series["top_k"]

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError):
            ExperimentRecord.from_dict({"series": {}})

    def test_json_round_trip(self, tmp_path, sample_rows):
        record = ExperimentRecord(
            name="figure2", parameters={"k": 10, "dataset": "kosarak"}
        )
        record.add_series("svt", sample_rows)
        path = tmp_path / "figure2.json"
        write_experiment_json(record, path)
        loaded = read_experiment_json(path)
        assert loaded.name == "figure2"
        assert loaded.parameters["dataset"] == "kosarak"
        assert loaded.series["svt"][2]["k"] == 25

    def test_json_file_is_valid_json(self, tmp_path, sample_rows):
        record = ExperimentRecord(name="figure2")
        record.add_series("svt", sample_rows)
        path = tmp_path / "figure2.json"
        write_experiment_json(record, path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "figure2"


class TestCompareSeries:
    def test_identical_series_have_no_differences(self, sample_rows):
        assert (
            compare_series(
                sample_rows,
                sample_rows,
                key_column="k",
                value_column="improvement_percent",
                tolerance=0.0,
            )
            == []
        )

    def test_detects_value_drift(self, sample_rows):
        candidate = [dict(row) for row in sample_rows]
        candidate[1]["improvement_percent"] = 10.0
        differences = compare_series(
            sample_rows, candidate, "k", "improvement_percent", tolerance=1.0
        )
        assert len(differences) == 1
        assert "k=10" in differences[0]

    def test_tolerance_suppresses_small_drift(self, sample_rows):
        candidate = [dict(row) for row in sample_rows]
        candidate[0]["improvement_percent"] += 0.5
        assert (
            compare_series(sample_rows, candidate, "k", "improvement_percent", 1.0)
            == []
        )

    def test_detects_missing_points(self, sample_rows):
        differences = compare_series(
            sample_rows, sample_rows[:2], "k", "improvement_percent", 0.1
        )
        assert any("missing from candidate" in d for d in differences)
        differences = compare_series(
            sample_rows[:2], sample_rows, "k", "improvement_percent", 0.1
        )
        assert any("missing from baseline" in d for d in differences)

    def test_negative_tolerance_rejected(self, sample_rows):
        with pytest.raises(ValueError):
            compare_series(sample_rows, sample_rows, "k", "improvement_percent", -1.0)
