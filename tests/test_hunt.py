"""End-to-end and unit tests of the dynamic DP-violation hunter
(:mod:`repro.hunt`).

The load-bearing properties:

* the statistical core is *exact* -- Clopper--Pearson endpoints match the
  classical tables, the epsilon lower bound is a valid one-sided claim,
  Holm controls the family-wise level, and the train/test discipline is
  enforced by construction;
* a seeded hunt is deterministic and *agrees with the static verifier*:
  a refuted variant yields a witness, a verified mechanism survives;
* routing the trials through the job service changes nothing -- every
  batch is bit-identical to the in-process facade run, so the service
  campaign reproduces the in-process campaign exactly.
"""

import math

import numpy as np
import pytest

from repro.api import SvtVariantSpec, run
from repro.hunt import (
    EventCounts,
    HuntConfig,
    InProcessRunner,
    RunRequest,
    ServiceRunner,
    TrialWindow,
    clopper_pearson,
    cross_check,
    derive_seed,
    epsilon_lower_bound,
    epsilon_p_value,
    generate_candidates,
    generate_pairs,
    holm_reject,
    hunt_catalogue,
    pair_specs,
    render_hunt_table,
    require_agreement,
    run_campaign,
    run_hunt,
    test_events as evaluate_events,  # aliased so pytest does not collect it
)
from repro.hunt.campaign import CampaignOutcome
from repro.hunt.report import HuntDisagreementError
from repro.hunt.stats import (
    betainc,
    beta_ppf,
    directed_lower_bound,
    train_test_counts,
)
from test_service import assert_results_identical

SEED = 7


@pytest.fixture(scope="module")
def catalogue():
    return {entry.label: entry for entry in hunt_catalogue()}


# ---------------------------------------------------------------------------
# the statistical core
# ---------------------------------------------------------------------------


class TestBetaFunctions:
    def test_betainc_uniform_is_identity(self):
        for x in (0.0, 0.125, 0.5, 0.875, 1.0):
            assert betainc(1.0, 1.0, x) == pytest.approx(x, abs=1e-12)

    def test_betainc_matches_closed_form(self):
        # I_x(2, 1) = x^2 and I_x(1, 2) = 1 - (1-x)^2.
        assert betainc(2.0, 1.0, 0.3) == pytest.approx(0.09, abs=1e-10)
        assert betainc(1.0, 2.0, 0.3) == pytest.approx(0.51, abs=1e-10)

    def test_betainc_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            betainc(0.0, 1.0, 0.5)

    def test_ppf_round_trips_through_cdf(self):
        for q in (0.01, 0.25, 0.5, 0.975):
            x = beta_ppf(q, 3.0, 5.0)
            assert betainc(3.0, 5.0, x) == pytest.approx(q, abs=1e-9)


class TestClopperPearson:
    def test_matches_the_classical_table(self):
        # The canonical 5/10 at 95%: (0.187, 0.813) to three decimals.
        lower, upper = clopper_pearson(5, 10, 0.05)
        assert lower == pytest.approx(0.1871, abs=5e-4)
        assert upper == pytest.approx(0.8129, abs=5e-4)

    def test_zero_and_full_hits_pin_the_endpoints(self):
        assert clopper_pearson(0, 10, 0.05)[0] == 0.0
        assert clopper_pearson(10, 10, 0.05)[1] == 1.0
        lower, upper = clopper_pearson(0, 10, 0.05)
        assert 0.0 < upper < 1.0
        assert clopper_pearson(10, 10, 0.05)[0] > 0.0

    def test_interval_narrows_with_trials(self):
        narrow = clopper_pearson(500, 1000, 0.05)
        wide = clopper_pearson(5, 10, 0.05)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="trials"):
            clopper_pearson(0, 0, 0.05)
        with pytest.raises(ValueError, match="successes"):
            clopper_pearson(11, 10, 0.05)
        with pytest.raises(ValueError, match="alpha"):
            clopper_pearson(5, 10, 1.5)


class TestEpsilonBounds:
    def test_zero_successes_on_the_favourable_side_is_minus_inf(self):
        counts = EventCounts(0, 1000, 10, 1000)
        assert epsilon_lower_bound(counts, 0.05) == float("-inf")

    def test_lopsided_counts_give_a_positive_bound(self):
        counts = EventCounts(400, 1000, 20, 1000)
        bound = epsilon_lower_bound(counts, 0.05)
        assert 0.0 < bound < math.log(400 / 20)

    def test_directed_bound_is_symmetric_under_swap(self):
        counts = EventCounts(20, 1000, 400, 1000)
        bound, direction = directed_lower_bound(counts, 0.05)
        assert direction == -1
        forward, forward_dir = directed_lower_bound(counts.swapped(), 0.05)
        assert forward_dir == +1
        assert bound == pytest.approx(forward, abs=1e-12)

    def test_bound_is_conservative_in_alpha(self):
        counts = EventCounts(400, 1000, 20, 1000)
        tight = epsilon_lower_bound(counts, 0.001)
        loose = epsilon_lower_bound(counts, 0.2)
        assert tight < loose

    def test_p_value_monotone_in_evidence(self):
        weak = epsilon_p_value(EventCounts(60, 1000, 20, 1000), 0.5)
        strong = epsilon_p_value(EventCounts(400, 1000, 20, 1000), 0.5)
        assert strong < weak <= 1.0
        assert strong >= 1e-12

    def test_p_value_is_one_for_balanced_counts(self):
        assert epsilon_p_value(EventCounts(50, 1000, 50, 1000), 1.0) == 1.0


class TestHolm:
    def test_step_down_thresholds(self):
        # m=3, alpha=0.05: thresholds 0.05/3, 0.05/2, 0.05 in p-order.
        rejected = holm_reject([0.001, 0.02, 0.9], 0.05)
        assert rejected == [True, True, False]

    def test_stops_at_the_first_failure(self):
        # The second-smallest fails 0.05/2, so the third is not even tested.
        rejected = holm_reject([0.001, 0.04, 0.045], 0.05)
        assert rejected == [True, False, False]

    def test_ties_resolve_deterministically(self):
        assert holm_reject([0.01, 0.01], 0.05) == holm_reject([0.01, 0.01], 0.05)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            holm_reject([0.01], 0.0)

    def test_test_events_reports_the_corrected_bound(self):
        counts = [
            EventCounts(400, 1000, 20, 1000),
            EventCounts(50, 1000, 50, 1000),
        ]
        outcomes = evaluate_events(counts, 0.5, 0.05)
        assert [outcome.index for outcome in outcomes] == [0, 1]
        assert outcomes[0].rejected and not outcomes[1].rejected
        assert outcomes[0].epsilon_bound > 0.5
        assert outcomes[1].p_value == 1.0


class TestTrainTestSplit:
    def test_split_counts_partition_the_sample(self):
        occurrences = np.array([True, True, False, True, False, True])
        train, test = train_test_counts(occurrences, 4)
        assert (train, test) == (3, 1)
        assert train + test == int(occurrences.sum())

    def test_split_bounds_are_validated(self):
        with pytest.raises(ValueError, match="split"):
            train_test_counts([True, False], 3)


# ---------------------------------------------------------------------------
# neighbouring pairs
# ---------------------------------------------------------------------------


class TestInputs:
    def test_general_adjacency_stays_within_sensitivity(self):
        pairs = generate_pairs((8.0, 9.0, 7.0), 1.0, monotonic=False)
        assert len(pairs) >= 7
        for pair in pairs:
            assert pair.max_delta() <= 1.0 + 1e-12
            assert len(pair.queries_d) == len(pair.queries_d_prime)

    def test_monotonic_claims_admit_only_single_signed_shifts(self):
        pairs = generate_pairs((8.0, 9.0, 7.0), 1.0, monotonic=True)
        assert pairs  # never empty
        for pair in pairs:
            deltas = [
                b - a for a, b in zip(pair.queries_d, pair.queries_d_prime)
            ]
            signs = {1 if d > 0 else -1 for d in deltas if d != 0.0}
            assert len(signs) <= 1, pair.category

    def test_categories_are_distinct(self):
        pairs = generate_pairs((8.0, 9.0, 7.0), 1.0, monotonic=False)
        categories = [pair.category for pair in pairs]
        assert len(categories) == len(set(categories))

    def test_pair_specs_substitute_only_the_queries(self, catalogue):
        entry = catalogue["svt-variant-6"]
        pair = generate_pairs(entry.spec.queries, 1.0, monotonic=False)[0]
        spec_d, spec_d_prime = pair_specs(entry.spec, pair)
        assert tuple(spec_d.queries) == pair.queries_d
        assert tuple(spec_d_prime.queries) == pair.queries_d_prime
        assert spec_d.epsilon == entry.spec.epsilon
        assert spec_d.variant == entry.spec.variant


# ---------------------------------------------------------------------------
# event selection
# ---------------------------------------------------------------------------


class TestEvents:
    @pytest.fixture(scope="class")
    def window(self):
        spec = SvtVariantSpec(
            queries=(9.0, 8.0, 7.5, 8.5), epsilon=1.0, variant=1,
            threshold=8.0, k=1,
        )
        result = run(spec, engine="reference", trials=64, rng=SEED)
        return TrialWindow(result, 0, 64)

    def test_tally_denominator_is_the_window_size(self, window):
        candidates = generate_candidates([window], [window], 8)
        assert candidates
        for event in candidates:
            successes, trials = event.tally([window])
            assert trials == 64
            assert 0 <= successes <= trials

    def test_candidate_pool_is_capped_and_deduplicated(self, window):
        candidates = generate_candidates([window], [window], 3)
        assert len(candidates) <= 3
        labels = [event.describe() for event in candidates]
        assert len(labels) == len(set(labels))

    def test_windows_partition_their_result(self, window):
        left = TrialWindow(window.result, 0, 32)
        right = TrialWindow(window.result, 32, 64)
        event = generate_candidates([window], [window], 1)[0]
        whole, _ = event.tally([window])
        first, _ = event.tally([left])
        second, _ = event.tally([right])
        assert whole == first + second


# ---------------------------------------------------------------------------
# campaigns: determinism, verdict agreement, service parity
# ---------------------------------------------------------------------------


def _small_config(schedule, chunk):
    return HuntConfig(schedule_override=schedule, chunk_trials=chunk)


class TestHuntEndToEnd:
    def test_refuted_variant_yields_a_certified_witness(self, catalogue):
        entry = catalogue["svt-variant-6"]
        outcome = run_hunt(
            entry,
            InProcessRunner(chunk_trials=600),
            seed=SEED,
            config=_small_config((1200,), 600),
        )
        assert outcome.violated
        witness = outcome.witness
        assert witness.epsilon_bound > entry.spec.epsilon
        assert witness.p_value <= witness.alpha
        assert witness.counts.successes_d > witness.counts.successes_d_prime
        assert outcome.total_trials > 0

    def test_verified_mechanism_survives(self, catalogue):
        entry = catalogue["svt-variant-1"]
        outcome = run_hunt(
            entry,
            InProcessRunner(chunk_trials=600),
            seed=SEED,
            config=_small_config((1200,), 600),
        )
        assert not outcome.violated
        assert outcome.rounds_completed == 1

    def test_seeded_hunt_is_deterministic(self, catalogue):
        entry = catalogue["svt-variant-6"]
        config = _small_config((1200,), 600)
        first = run_hunt(
            entry, InProcessRunner(chunk_trials=600), seed=SEED, config=config
        )
        second = run_hunt(
            entry, InProcessRunner(chunk_trials=600), seed=SEED, config=config
        )
        assert first.witness == second.witness
        assert first.total_trials == second.total_trials

    def test_derived_seeds_are_content_addressed(self):
        base = derive_seed(SEED, "svt-variant-6", 0, (7.5, 8.5), 1000)
        assert base == derive_seed(SEED, "svt-variant-6", 0, (7.5, 8.5), 1000)
        assert base != derive_seed(SEED, "svt-variant-6", 1, (7.5, 8.5), 1000)
        assert base != derive_seed(SEED, "svt-variant-6", 0, (8.5, 8.5), 1000)
        assert base != derive_seed(SEED + 1, "svt-variant-6", 0, (7.5, 8.5), 1000)


class TestServiceParity:
    def test_service_batch_is_bit_identical_to_facade_run(
        self, tmp_path, catalogue
    ):
        entry = catalogue["svt-variant-6"]
        request = RunRequest(
            spec=entry.spec, engine=entry.engine, trials=40,
            seed=derive_seed(SEED, entry.label, 0, entry.spec.queries, 40),
        )
        runner = ServiceRunner(
            root=tmp_path / "svc", workers=3, chunk_trials=8
        )
        (via_service,) = runner.run_many([request], tenant=entry.tenant)
        in_process = run(
            request.spec,
            engine=request.engine,
            trials=request.trials,
            rng=request.seed,
            shards=3,
            chunk_trials=8,
        )
        assert_results_identical(via_service, in_process)

    def test_service_campaign_reproduces_the_in_process_campaign(
        self, tmp_path, catalogue
    ):
        entry = catalogue["svt-variant-6"]
        config = _small_config((800,), 400)
        in_process = run_hunt(
            entry, InProcessRunner(chunk_trials=400), seed=SEED, config=config
        )
        service = run_hunt(
            entry,
            ServiceRunner(root=tmp_path / "svc", workers=2, chunk_trials=400),
            seed=SEED,
            config=config,
        )
        assert service.witness == in_process.witness
        assert service.total_trials == in_process.total_trials
        # The service path is metered: each hunt runs under its own tenant.
        assert service.tenant == "hunt-svt-variant-6"
        assert service.epsilon_charged is not None
        assert service.epsilon_charged > 0.0
        assert in_process.epsilon_charged is None


class TestReport:
    def test_campaign_cross_check_agrees_on_a_mixed_pair(self, catalogue):
        entries = [catalogue["svt-variant-6"], catalogue["svt-variant-1"]]
        outcomes = run_campaign(
            InProcessRunner(chunk_trials=600),
            seed=SEED,
            entries=entries,
            config=_small_config((1200,), 600),
        )
        rows = cross_check(entries, outcomes)
        assert all(row.agrees for row in rows)
        require_agreement(rows)  # must not raise
        table = render_hunt_table(rows)
        assert "VIOLATED" in table and "survived" in table
        assert "DISAGREES" not in table

    def test_under_hunted_refuted_variant_is_a_loud_disagreement(
        self, catalogue
    ):
        entry = catalogue["svt-variant-6"]
        survived = CampaignOutcome(
            label=entry.label,
            claimed_epsilon=float(entry.spec.epsilon),
            schedule=(100,),
            witness=None,
            rounds_completed=1,
            total_trials=1600,
            tenant=entry.tenant,
        )
        rows = cross_check([entry], [survived])
        assert not rows[0].agrees
        assert "DISAGREES" in render_hunt_table(rows)
        with pytest.raises(HuntDisagreementError, match="svt-variant-6"):
            require_agreement(rows)

    def test_cross_check_refuses_misaligned_sequences(self, catalogue):
        entry = catalogue["svt-variant-6"]
        outcome = CampaignOutcome(
            label="svt-variant-1",
            claimed_epsilon=1.0,
            schedule=(100,),
            witness=None,
            rounds_completed=1,
            total_trials=0,
            tenant="hunt-svt-variant-1",
        )
        with pytest.raises(ValueError, match="order mismatch"):
            cross_check([entry], [outcome])
        with pytest.raises(ValueError, match="entries"):
            cross_check([entry], [])


# ---------------------------------------------------------------------------
# the CLI verb
# ---------------------------------------------------------------------------


class TestHuntCLI:
    def test_agreeing_hunt_exits_zero(self, tmp_path, capsys):
        from repro.evaluation.cli import main

        code = main(
            [
                "hunt",
                "--root", str(tmp_path / "svc"),
                "--seed", str(SEED),
                "--mechanisms", "svt-variant-6",
                "--schedule", "1200",
                "--chunk-trials", "600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "0 disagreement(s)" in out

    def test_under_hunted_schedule_exits_two(self, tmp_path, capsys):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "hunt",
                    "--root", str(tmp_path / "svc"),
                    "--seed", str(SEED),
                    "--mechanisms", "svt-variant-3",
                    "--schedule", "400",
                    "--chunk-trials", "400",
                ]
            )
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "DISAGREES" in captured.out
        assert "disagrees with static verdicts" in captured.err

    def test_unknown_mechanism_exits_two(self, tmp_path, capsys):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["hunt", "--root", str(tmp_path / "svc"), "--mechanisms", "nope"])
        assert excinfo.value.code == 2
        assert "unknown mechanism" in capsys.readouterr().err

    def test_hunt_requires_exactly_one_transport(self, capsys):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit):
            main(["hunt"])
        assert "exactly one" in capsys.readouterr().err
