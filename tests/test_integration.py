"""Integration tests exercising the full public API end to end."""

import numpy as np
import pytest

import repro
from repro import (
    AdaptiveSparseVectorWithGap,
    CompositionAccountant,
    LaplaceMechanism,
    NoisyTopKWithGap,
    PrivacyBudget,
    SparseVectorWithGap,
    blue_top_k_estimate,
    fuse_gap_and_measurement,
    gap_lower_confidence_bound,
    item_count_workload,
    make_dataset,
)
from repro.mechanisms.sparse_vector import SvtBranch


class TestPublicApi:
    def test_version_and_all_exports_resolve(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_top_level_names_match_submodules(self):
        from repro.core.noisy_top_k import NoisyTopKWithGap as FromModule

        assert repro.NoisyTopKWithGap is FromModule


class TestEndToEndTopKPipeline:
    def test_dataset_to_fused_estimates(self):
        database = make_dataset("BMS-POS", scale=0.005, rng=0)
        counts = database.item_counts()
        budget = PrivacyBudget(0.8)
        selection_budget, measurement_budget = budget.halves()
        accountant = CompositionAccountant(target_epsilon=0.8)

        k = 5
        selector = NoisyTopKWithGap(
            epsilon=selection_budget.epsilon, k=k, monotonic=True
        )
        selection = selector.select(counts, rng=1)
        accountant.record(selector.name, selection_budget.epsilon)

        measurer = LaplaceMechanism(
            epsilon=measurement_budget.epsilon, l1_sensitivity=float(k)
        )
        measurements = measurer.release(counts[selection.indices], rng=2)
        accountant.record(measurer.name, measurement_budget.epsilon)

        fused = blue_top_k_estimate(
            measurements.values, selection.gaps[: k - 1], lam=1.0
        )

        accountant.assert_within(0.8)
        assert fused.shape == (k,)
        # Fused estimates should be in the right ballpark of the true counts.
        truth = counts[selection.indices]
        assert np.all(np.abs(fused - truth) < 40 * np.sqrt(measurer.variance))

    def test_workload_evaluation_path(self):
        database = make_dataset("T40I10D100K", scale=0.002, rng=3)
        items = [item for item, _ in database.top_items(30)]
        workload = item_count_workload(items)
        counts = workload.evaluate(database)
        assert counts.shape == (30,)
        selector = NoisyTopKWithGap(epsilon=1.0, k=3, monotonic=workload.monotonic)
        result = selector.select(counts, rng=0)
        assert len(result.indices) == 3


class TestEndToEndSvtPipeline:
    def test_adaptive_svt_with_confidence_bounds(self):
        database = make_dataset("kosarak", scale=0.003, rng=1)
        counts = database.item_counts()
        threshold = database.kth_largest_count(40)

        mechanism = AdaptiveSparseVectorWithGap(
            epsilon=0.7, threshold=threshold, k=5, monotonic=True
        )
        result = mechanism.run(counts, rng=4)
        assert result.metadata.epsilon_spent <= 0.7 + 1e-9

        for outcome in result.outcomes:
            if not outcome.above:
                continue
            eps_star = (
                mechanism.epsilon_top
                if outcome.branch is SvtBranch.TOP
                else mechanism.epsilon_middle
            )
            bound = gap_lower_confidence_bound(
                outcome.gap,
                threshold,
                eps0=mechanism.epsilon_threshold,
                eps_star=eps_star,
                confidence=0.95,
            )
            assert bound <= outcome.gap + threshold

    def test_svt_with_gap_then_measure_and_fuse(self):
        database = make_dataset("BMS-POS", scale=0.005, rng=2)
        counts = database.item_counts()
        threshold = database.kth_largest_count(30)

        selector = SparseVectorWithGap(
            epsilon=0.35, threshold=threshold, k=5, monotonic=True
        )
        run = selector.run(counts, rng=5)
        if run.num_answered == 0:
            pytest.skip("no above-threshold answers in this draw")

        measurer = LaplaceMechanism(
            epsilon=0.35, l1_sensitivity=float(run.num_answered)
        )
        measured = measurer.release(counts[run.above_indices], rng=6)
        fused = fuse_gap_and_measurement(
            np.asarray(run.gaps) + threshold,
            np.full(run.num_answered, selector.gap_variance),
            measured.values,
            measured.variance,
        )
        truth = counts[run.above_indices]
        fused_mse = float(np.mean((fused - truth) ** 2))
        measured_mse = float(np.mean((measured.values - truth) ** 2))
        # A single draw is noisy; just sanity-check magnitudes and finiteness.
        assert np.isfinite(fused_mse) and np.isfinite(measured_mse)


class TestCrossMechanismConsistency:
    def test_selection_agreement_on_well_separated_counts(self, separated_counts):
        from repro import NoisyTopK

        classic = NoisyTopK(epsilon=5.0, k=3, monotonic=True).select(
            separated_counts, rng=0
        )
        with_gap = NoisyTopKWithGap(epsilon=5.0, k=3, monotonic=True).select(
            separated_counts, rng=0
        )
        assert classic.indices == with_gap.indices == [0, 1, 2]

    def test_svt_and_adaptive_find_same_obvious_items(self, separated_counts):
        from repro import SparseVector

        threshold = 350.0
        standard = SparseVector(
            epsilon=5.0, threshold=threshold, k=4, monotonic=True
        ).run(separated_counts, rng=0)
        adaptive = AdaptiveSparseVectorWithGap(
            epsilon=5.0, threshold=threshold, k=4, monotonic=True
        ).run(separated_counts, rng=0)
        truly_above = set(np.nonzero(separated_counts > threshold)[0])
        assert set(standard.above_indices) <= truly_above | set(range(len(separated_counts)))
        assert truly_above.issubset(set(adaptive.above_indices)) or len(
            adaptive.above_indices
        ) >= len(standard.above_indices)
