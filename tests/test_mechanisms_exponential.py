"""Unit tests for the exponential mechanism baseline."""

import numpy as np
import pytest

from repro.mechanisms.exponential import ExponentialMechanism


class TestExponentialMechanism:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            ExponentialMechanism(epsilon=1.0, sensitivity=0.0)

    def test_probabilities_sum_to_one(self):
        mech = ExponentialMechanism(epsilon=1.0)
        probabilities = mech.selection_probabilities([1.0, 2.0, 3.0])
        assert probabilities.sum() == pytest.approx(1.0)

    def test_higher_utility_gets_higher_probability(self):
        probabilities = ExponentialMechanism(epsilon=1.0).selection_probabilities(
            [0.0, 5.0, 10.0]
        )
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_monotonic_sharpens_distribution(self):
        utilities = [0.0, 10.0]
        general = ExponentialMechanism(epsilon=1.0, monotonic=False)
        monotonic = ExponentialMechanism(epsilon=1.0, monotonic=True)
        assert (
            monotonic.selection_probabilities(utilities)[1]
            > general.selection_probabilities(utilities)[1]
        )

    def test_probability_ratio_matches_epsilon(self):
        # For two candidates differing by exactly the sensitivity, the
        # probability ratio should be exp(epsilon/2) in the general case.
        epsilon = 1.2
        mech = ExponentialMechanism(epsilon=epsilon, sensitivity=1.0)
        probabilities = mech.selection_probabilities([0.0, 1.0])
        assert probabilities[1] / probabilities[0] == pytest.approx(
            np.exp(epsilon / 2.0)
        )

    def test_large_scores_numerically_stable(self):
        probabilities = ExponentialMechanism(epsilon=1.0).selection_probabilities(
            [1e6, 1e6 + 1.0]
        )
        assert np.all(np.isfinite(probabilities))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_select_returns_valid_index_and_metadata(self):
        mech = ExponentialMechanism(epsilon=2.0)
        selection = mech.select([1.0, 50.0, 3.0], rng=0)
        assert 0 <= selection.index < 3
        assert selection.metadata.epsilon == 2.0
        assert selection.metadata.extra["num_candidates"] == 3.0

    def test_empirical_frequencies_match_distribution(self):
        mech = ExponentialMechanism(epsilon=1.0)
        utilities = [0.0, 2.0, 4.0]
        probabilities = mech.selection_probabilities(utilities)
        rng = np.random.default_rng(0)
        counts = np.zeros(3)
        trials = 5000
        for _ in range(trials):
            counts[mech.select(utilities, rng=rng).index] += 1
        np.testing.assert_allclose(counts / trials, probabilities, atol=0.03)

    def test_rejects_empty_utilities(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(epsilon=1.0).selection_probabilities([])

    def test_agrees_with_noisy_max_on_separated_scores(self):
        # Sanity link to the Noisy Max family: with a clear winner both should
        # select the same index almost always.
        from repro.mechanisms.noisy_max import ReportNoisyMax

        utilities = [0.0, 0.0, 100.0, 0.0]
        exp_index = ExponentialMechanism(epsilon=5.0).select(utilities, rng=1).index
        rnm_index = ReportNoisyMax(epsilon=5.0).select_index(utilities, rng=1)
        assert exp_index == rnm_index == 2
