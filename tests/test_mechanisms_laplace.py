"""Unit tests for the vector Laplace mechanism."""

import numpy as np
import pytest

from repro.mechanisms.laplace_mechanism import (
    LaplaceMechanism,
    measurement_scale_for_split,
)
from repro.queries.workload import item_count_workload


class TestLaplaceMechanism:
    def test_scale_and_variance(self):
        mech = LaplaceMechanism(epsilon=0.5, l1_sensitivity=2.0)
        assert mech.scale == pytest.approx(4.0)
        assert mech.variance == pytest.approx(32.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, l1_sensitivity=0.0)

    def test_release_shape_and_metadata(self):
        mech = LaplaceMechanism(epsilon=1.0)
        result = mech.release([1.0, 2.0, 3.0], rng=0)
        assert len(result) == 3
        assert result.metadata.epsilon == 1.0
        assert result.metadata.epsilon_spent == 1.0
        assert result.metadata.mechanism == "laplace-mechanism"

    def test_release_reproducible(self):
        mech = LaplaceMechanism(epsilon=1.0)
        a = mech.release([5.0, 6.0], rng=11).values
        b = mech.release([5.0, 6.0], rng=11).values
        np.testing.assert_allclose(a, b)

    def test_release_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0).release(np.zeros((2, 2)))

    def test_explicit_noise_replay(self):
        mech = LaplaceMechanism(epsilon=1.0)
        noise = np.array([0.5, -0.5])
        result = mech.release([1.0, 2.0], noise=noise)
        np.testing.assert_allclose(result.values, [1.5, 1.5])

    def test_explicit_noise_shape_mismatch(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0).release([1.0, 2.0], noise=np.array([0.1]))

    def test_unbiased_and_variance_empirically(self):
        mech = LaplaceMechanism(epsilon=1.0, l1_sensitivity=1.0)
        truth = np.full(50_000, 10.0)
        released = mech.release(truth, rng=0).values
        assert np.mean(released) == pytest.approx(10.0, abs=0.05)
        assert np.var(released) == pytest.approx(mech.variance, rel=0.05)

    def test_noise_trace_consistency(self):
        mech = LaplaceMechanism(epsilon=2.0)
        result = mech.release([0.0, 0.0, 0.0], rng=1)
        np.testing.assert_allclose(result.noise_trace.values, result.values)
        np.testing.assert_allclose(result.noise_trace.scales, mech.scale)

    def test_measure_workload_subset(self, small_database):
        items = small_database.unique_items()[:5]
        workload = item_count_workload(items)
        mech = LaplaceMechanism(epsilon=1.0, l1_sensitivity=2.0)
        result = mech.measure_workload(workload, small_database, indices=[0, 2], rng=0)
        assert len(result) == 2


class TestMeasurementScaleForSplit:
    def test_formula(self):
        assert measurement_scale_for_split(1.0, 5) == pytest.approx(10.0)

    def test_matches_paper_variance(self):
        # Variance should be 8 k^2 / epsilon^2 (Section 5.2).
        epsilon, k = 0.7, 10
        scale = measurement_scale_for_split(epsilon, k)
        assert 2 * scale**2 == pytest.approx(8 * k**2 / epsilon**2)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            measurement_scale_for_split(0.0, 5)
        with pytest.raises(ValueError):
            measurement_scale_for_split(1.0, 0)
