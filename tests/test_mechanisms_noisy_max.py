"""Unit tests for the classical Noisy Max / Noisy Top-K baselines."""

import numpy as np
import pytest

from repro.mechanisms.noisy_max import (
    NoisyTopK,
    ReportNoisyMax,
    SelectionResult,
    noise_scale_for_top_k,
)


class TestNoiseScale:
    def test_general_scale(self):
        assert noise_scale_for_top_k(1.0, 5, monotonic=False) == pytest.approx(10.0)

    def test_monotonic_scale_is_half(self):
        assert noise_scale_for_top_k(1.0, 5, monotonic=True) == pytest.approx(5.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            noise_scale_for_top_k(0.0, 5, monotonic=True)
        with pytest.raises(ValueError):
            noise_scale_for_top_k(1.0, 0, monotonic=True)


class TestNoisyTopK:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NoisyTopK(epsilon=0.0, k=1)
        with pytest.raises(ValueError):
            NoisyTopK(epsilon=1.0, k=0)
        with pytest.raises(ValueError):
            NoisyTopK(epsilon=1.0, k=1, sensitivity=0.0)

    def test_selects_k_distinct_indices(self):
        mech = NoisyTopK(epsilon=5.0, k=3)
        result = mech.select(np.arange(10.0), rng=0)
        assert len(result.indices) == 3
        assert len(set(result.indices)) == 3

    def test_no_gaps_released(self):
        result = NoisyTopK(epsilon=1.0, k=2).select(np.arange(5.0), rng=0)
        assert result.gaps.size == 0
        with pytest.raises(ValueError):
            result.pairwise_gap(0, 1)

    def test_requires_at_least_k_queries(self):
        with pytest.raises(ValueError):
            NoisyTopK(epsilon=1.0, k=5).select([1.0, 2.0])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            NoisyTopK(epsilon=1.0, k=1).select(np.zeros((2, 2)))

    def test_well_separated_values_selected_correctly(self):
        values = np.array([1000.0, 0.0, 0.0, 0.0, 500.0])
        mech = NoisyTopK(epsilon=5.0, k=2, monotonic=True)
        result = mech.select(values, rng=3)
        assert set(result.indices) == {0, 4}
        assert result.indices[0] == 0  # descending order

    def test_reproducible_with_seed(self):
        mech = NoisyTopK(epsilon=1.0, k=2)
        a = mech.select(np.arange(6.0), rng=9).indices
        b = mech.select(np.arange(6.0), rng=9).indices
        assert a == b

    def test_metadata(self):
        mech = NoisyTopK(epsilon=0.8, k=2, monotonic=True)
        result = mech.select(np.arange(6.0), rng=0)
        assert result.metadata.epsilon == pytest.approx(0.8)
        assert result.metadata.epsilon_spent == pytest.approx(0.8)
        assert result.metadata.monotonic is True
        assert result.metadata.extra["k"] == 2.0

    def test_noise_trace_covers_all_queries(self):
        mech = NoisyTopK(epsilon=1.0, k=1)
        result = mech.select(np.arange(7.0), rng=0)
        assert len(result.noise_trace) == 7

    def test_explicit_noise_replay_is_deterministic(self):
        mech = NoisyTopK(epsilon=1.0, k=2)
        noise = np.zeros(5)
        result = mech.select([5.0, 1.0, 9.0, 2.0, 3.0], noise=noise)
        assert result.indices == [2, 0]

    def test_selection_frequency_favours_larger_query(self):
        # The largest query should win much more often than the smallest.
        mech = NoisyTopK(epsilon=2.0, k=1, monotonic=True)
        values = np.array([10.0, 0.0])
        rng = np.random.default_rng(0)
        wins = sum(mech.select(values, rng=rng).indices[0] == 0 for _ in range(500))
        assert wins > 400


class TestReportNoisyMax:
    def test_k_is_one(self):
        assert ReportNoisyMax(epsilon=1.0).k == 1

    def test_select_index_returns_int(self):
        index = ReportNoisyMax(epsilon=5.0).select_index([1.0, 100.0, 2.0], rng=0)
        assert isinstance(index, int)
        assert index == 1

    def test_name(self):
        assert ReportNoisyMax(epsilon=1.0).name == "report-noisy-max"


class TestSelectionResult:
    def test_post_init_normalises_types(self):
        result = SelectionResult(
            indices=[np.int64(3), np.int64(1)],
            gaps=[1.0, 2.0],
            metadata=ReportNoisyMax(epsilon=1.0).select([1.0, 2.0], rng=0).metadata,
        )
        assert all(isinstance(i, int) for i in result.indices)
        assert result.k == 2

    def test_pairwise_gap_sums_consecutive(self):
        base = ReportNoisyMax(epsilon=1.0).select([1.0, 2.0], rng=0)
        result = SelectionResult(
            indices=[0, 1, 2], gaps=np.array([1.5, 2.5, 3.0]), metadata=base.metadata
        )
        assert result.pairwise_gap(0, 2) == pytest.approx(4.0)
        assert result.pairwise_gap(0, 1) == pytest.approx(1.5)

    def test_pairwise_gap_validates_range(self):
        base = ReportNoisyMax(epsilon=1.0).select([1.0, 2.0], rng=0)
        result = SelectionResult(
            indices=[0, 1], gaps=np.array([1.0, 2.0]), metadata=base.metadata
        )
        with pytest.raises(ValueError):
            result.pairwise_gap(1, 1)
        with pytest.raises(ValueError):
            result.pairwise_gap(0, 5)
