"""Unit tests for the Sparse Vector baselines (standard and with-gap)."""

import numpy as np
import pytest

from repro.mechanisms.sparse_vector import (
    SparseVector,
    SparseVectorWithGap,
    SvtBranch,
    svt_budget_allocation,
)


class TestBudgetAllocation:
    def test_monotonic_ratio(self):
        threshold, queries = svt_budget_allocation(1.0, k=8, monotonic=True)
        assert threshold == pytest.approx(1.0 / 5.0)
        assert queries == pytest.approx(4.0 / 5.0)

    def test_general_ratio(self):
        threshold, queries = svt_budget_allocation(1.0, k=4, monotonic=False)
        assert threshold == pytest.approx(1.0 / 5.0)
        assert threshold + queries == pytest.approx(1.0)

    def test_explicit_theta(self):
        threshold, queries = svt_budget_allocation(2.0, k=3, monotonic=True, theta=0.25)
        assert threshold == pytest.approx(0.5)
        assert queries == pytest.approx(1.5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            svt_budget_allocation(0.0, 1, True)
        with pytest.raises(ValueError):
            svt_budget_allocation(1.0, 0, True)
        with pytest.raises(ValueError):
            svt_budget_allocation(1.0, 1, True, theta=1.0)


class TestSparseVector:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SparseVector(epsilon=0.0, threshold=10.0)
        with pytest.raises(ValueError):
            SparseVector(epsilon=1.0, threshold=10.0, k=0)
        with pytest.raises(ValueError):
            SparseVector(epsilon=1.0, threshold=10.0, sensitivity=0.0)

    def test_budget_is_fully_allocated(self):
        svt = SparseVector(epsilon=0.7, threshold=10.0, k=5, monotonic=True)
        total = svt.epsilon_threshold + svt.k * svt.epsilon_per_query
        assert total == pytest.approx(0.7)

    def test_stops_after_k_answers(self):
        values = np.full(100, 1000.0)
        svt = SparseVector(epsilon=2.0, threshold=0.0, k=3, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.num_answered == 3
        assert result.num_processed <= 100

    def test_no_gaps_released(self):
        values = np.full(10, 1000.0)
        svt = SparseVector(epsilon=2.0, threshold=0.0, k=2, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.gaps == []
        for outcome in result.outcomes:
            assert outcome.gap is None

    def test_below_threshold_costs_nothing(self):
        values = np.full(20, -1000.0)
        svt = SparseVector(epsilon=1.0, threshold=0.0, k=2, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.num_answered == 0
        assert all(o.budget_used == 0.0 for o in result.outcomes)
        assert result.metadata.epsilon_spent == pytest.approx(svt.epsilon_threshold)

    def test_budget_spent_tracks_answers(self):
        values = np.full(100, 1000.0)
        svt = SparseVector(epsilon=1.0, threshold=0.0, k=4, monotonic=True)
        result = svt.run(values, rng=0)
        expected = svt.epsilon_threshold + 4 * svt.epsilon_per_query
        assert result.metadata.epsilon_spent == pytest.approx(expected)

    def test_never_exceeds_total_budget(self):
        values = np.full(50, 1000.0)
        svt = SparseVector(epsilon=0.5, threshold=0.0, k=10, monotonic=False)
        result = svt.run(values, rng=0)
        assert result.metadata.epsilon_spent <= svt.epsilon + 1e-9

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            SparseVector(epsilon=1.0, threshold=0.0).run(np.zeros((2, 2)))

    def test_reproducible_with_seed(self):
        values = np.linspace(0, 100, 50)
        svt = SparseVector(epsilon=1.0, threshold=50.0, k=5, monotonic=True)
        a = svt.run(values, rng=7).above_indices
        b = svt.run(values, rng=7).above_indices
        assert a == b

    def test_monotonic_uses_smaller_query_scale(self):
        monotonic = SparseVector(epsilon=1.0, threshold=0.0, k=3, monotonic=True)
        general = SparseVector(epsilon=1.0, threshold=0.0, k=3, monotonic=False)
        assert monotonic.query_scale < general.query_scale

    def test_outcomes_in_stream_order(self):
        values = np.array([1000.0, -1000.0, 1000.0, -1000.0, 1000.0])
        svt = SparseVector(epsilon=2.0, threshold=0.0, k=3, monotonic=True)
        result = svt.run(values, rng=1)
        assert [o.index for o in result.outcomes] == sorted(
            o.index for o in result.outcomes
        )

    def test_obvious_above_threshold_found(self):
        values = np.array([-500.0, 500.0, -500.0, 500.0])
        svt = SparseVector(epsilon=5.0, threshold=0.0, k=2, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.above_indices == [1, 3]


class TestSparseVectorWithGap:
    def test_gaps_released_for_above_threshold(self):
        values = np.full(10, 1000.0)
        svt = SparseVectorWithGap(epsilon=2.0, threshold=0.0, k=3, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.num_answered == 3
        assert len(result.gaps) == 3
        assert all(gap >= 0 for gap in result.gaps)

    def test_gap_is_unbiased_estimate_of_query_minus_threshold(self):
        # Average released gap over many runs should approach q - T.
        values = np.array([500.0])
        threshold = 100.0
        svt = SparseVectorWithGap(
            epsilon=1.0, threshold=threshold, k=1, monotonic=True
        )
        rng = np.random.default_rng(0)
        gaps = []
        for _ in range(3000):
            result = svt.run(values, rng=rng)
            gaps.extend(result.gaps)
        assert np.mean(gaps) == pytest.approx(400.0, rel=0.02)

    def test_same_privacy_parameters_as_gap_free(self):
        gap_free = SparseVector(epsilon=0.7, threshold=10.0, k=5, monotonic=True)
        with_gap = SparseVectorWithGap(epsilon=0.7, threshold=10.0, k=5, monotonic=True)
        assert gap_free.epsilon_threshold == pytest.approx(with_gap.epsilon_threshold)
        assert gap_free.epsilon_per_query == pytest.approx(with_gap.epsilon_per_query)
        assert gap_free.query_scale == pytest.approx(with_gap.query_scale)

    def test_gap_variance_formula(self):
        svt = SparseVectorWithGap(epsilon=1.0, threshold=0.0, k=2, monotonic=True)
        expected = 2 * svt.threshold_scale**2 + 2 * svt.query_scale**2
        assert svt.gap_variance == pytest.approx(expected)

    def test_branch_counts_middle_only(self):
        values = np.full(20, 1000.0)
        svt = SparseVectorWithGap(epsilon=2.0, threshold=0.0, k=4, monotonic=True)
        counts = svt.run(values, rng=0).branch_counts()
        assert counts[SvtBranch.MIDDLE] == 4
        assert counts[SvtBranch.TOP] == 0

    def test_remaining_budget_zero_when_k_reached(self):
        values = np.full(50, 1000.0)
        svt = SparseVectorWithGap(epsilon=1.0, threshold=0.0, k=5, monotonic=True)
        result = svt.run(values, rng=0)
        assert result.remaining_budget == pytest.approx(0.0, abs=1e-9)
