"""Tests for the Lyu et al. SVT variant catalogue (correct and broken)."""

import numpy as np
import pytest

from repro.alignment.verifier import EmpiricalDPVerifier
from repro.mechanisms.sparse_vector import SparseVector
from repro.mechanisms.svt_variants import (
    SVT_VARIANT_CATALOGUE,
    SvtVariant1,
    SvtVariant2,
    SvtVariant3,
    SvtVariant4,
    SvtVariant5,
    SvtVariant6,
    make_svt_variant,
)


class TestCatalogue:
    def test_all_six_variants_present(self):
        assert sorted(SVT_VARIANT_CATALOGUE) == [1, 2, 3, 4, 5, 6]

    def test_make_variant_dispatch(self):
        variant = make_svt_variant(2, epsilon=1.0, threshold=10.0, k=3)
        assert isinstance(variant, SvtVariant2)

    def test_make_variant_unknown_number(self):
        with pytest.raises(KeyError):
            make_svt_variant(7, epsilon=1.0, threshold=10.0)

    def test_privacy_flags(self):
        assert SvtVariant1.actually_private and SvtVariant2.actually_private
        for broken in (SvtVariant3, SvtVariant4, SvtVariant5, SvtVariant6):
            assert broken.actually_private is False

    def test_variant1_is_standard_svt(self):
        assert issubclass(SvtVariant1, SparseVector)


class TestCorrectVariantsBehaviour:
    def test_variant2_answers_at_most_k(self):
        values = np.full(100, 1000.0)
        mech = SvtVariant2(epsilon=1.0, threshold=0.0, k=4, monotonic=True)
        result = mech.run(values, rng=0)
        assert result.num_answered == 4
        assert result.metadata.epsilon_spent <= 1.0 + 1e-9

    def test_variant2_refreshes_threshold_noise(self):
        values = np.full(100, 1000.0)
        mech = SvtVariant2(epsilon=1.0, threshold=0.0, k=3, monotonic=True)
        result = mech.run(values, rng=1)
        threshold_draws = [
            name for name in result.noise_trace.names if name.startswith("threshold")
        ]
        # One initial draw plus one refresh per answer except the last.
        assert len(threshold_draws) == 3

    def test_variant2_noisier_than_variant1_at_same_budget(self):
        v1 = SvtVariant1(epsilon=1.0, threshold=0.0, k=5, monotonic=True)
        v2 = SvtVariant2(epsilon=1.0, threshold=0.0, k=5, monotonic=True)
        assert v2.query_scale > v1.query_scale

    def test_variant2_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SvtVariant2(epsilon=0.0, threshold=0.0)

    def test_variant1_passes_empirical_dp_check(self):
        counts = np.array([12.0, 3.0, 11.0, 2.0])
        neighbour = counts - np.array([1.0, 1.0, 0.0, 1.0])
        epsilon = 0.5
        verifier = EmpiricalDPVerifier(epsilon=epsilon, trials=3000, slack=1.5)

        def runner(values):
            return lambda g: SvtVariant1(
                epsilon=epsilon, threshold=8.0, k=2, monotonic=True
            ).run(values, rng=g)

        report = verifier.check(
            run_on_d=runner(counts),
            run_on_d_prime=runner(neighbour),
            event=lambda result: tuple(result.above_indices),
            rng=0,
        )
        assert report.passed, (report.worst_event, report.worst_ratio)


class TestBrokenVariantsBehaviour:
    def test_all_broken_variants_run_and_respect_k(self):
        values = np.full(50, 1000.0)
        for number in (3, 4, 5, 6):
            mech = make_svt_variant(number, epsilon=1.0, threshold=0.0, k=3)
            result = mech.run(values, rng=0)
            assert result.num_answered <= 3

    def test_variant3_leaks_noisy_values(self):
        values = np.full(10, 500.0)
        mech = SvtVariant3(epsilon=1.0, threshold=0.0, k=2)
        result = mech.run(values, rng=0)
        released = [o.gap for o in result.outcomes if o.above]
        # The released values are in the vicinity of the raw query answers,
        # which is exactly the leak.
        assert all(abs(value - 500.0) < 300.0 for value in released)

    def test_variant5_alignment_cost_grows_with_stream_length(self):
        # SVT5 adds no noise to the threshold, so the only way to preserve a
        # below-threshold ("bottom") outcome on a neighbouring database where
        # the query increased is to shift that query's own noise.  Each such
        # shift costs eps_per_query/2 (the query-noise alignment scale), so
        # the total alignment cost grows linearly with the number of
        # below-threshold outcomes and cannot be bounded by the claimed
        # epsilon for long streams -- the core of Lyu et al.'s refutation.
        epsilon, k = 0.5, 1
        mech = SvtVariant5(epsilon=epsilon, threshold=100.0, k=k)
        query_scale = 2.0 * mech.sensitivity / mech.epsilon_per_query
        for stream_length in (10, 100, 1000):
            # Every query increases by 1 on the neighbour, so every bottom
            # outcome needs a unit shift of its own noise coordinate.
            forced_cost = stream_length * (1.0 / query_scale)
            if stream_length >= 10:
                assert forced_cost > 0  # sanity
        assert 1000 * (1.0 / query_scale) > epsilon

    def test_variant6_flagged_by_empirical_verifier(self):
        # SVT6 adds no noise to the queries: with one item at 10 (9 on the
        # neighbour) and another at 9.7, the output pattern "first item above,
        # second item below" requires the noisy threshold to be <= 10 and
        # > 9.7 -- possible on D, impossible on D' (it would need to be both
        # <= 9 and > 9.7).  The empirical verifier sees the unbounded ratio.
        epsilon = 0.5
        verifier = EmpiricalDPVerifier(
            epsilon=epsilon, trials=6000, slack=1.3, min_count=10
        )
        counts = np.array([10.0, 9.7])
        neighbour = np.array([9.0, 9.7])

        def runner(values):
            return lambda g: SvtVariant6(
                epsilon=epsilon, threshold=9.5, k=2
            ).run(values, rng=g)

        report = verifier.check(
            run_on_d=runner(counts),
            run_on_d_prime=runner(neighbour),
            event=lambda result: tuple(result.above_indices),
            rng=2,
        )
        assert not report.passed
