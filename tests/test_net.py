"""End-to-end tests of the HTTP transport (:mod:`repro.net`).

The load-bearing property is that the network boundary does not weaken the
service determinism contract: a result fetched over HTTP from a client
that has **no filesystem access to the service root** is bit-identical to
``run(spec, trials=B, rng=seed, shards=N, chunk_trials=C)``.  Around it,
the boundary's own guarantees: bearer-token auth (401/403), per-tenant
rate limits and concurrency caps (429 with Retry-After), queue-depth
backpressure (429), ledger admission refusals (402), and a strict
domain-error -> status mapping that never leaks a traceback body.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.accounting.budget import BudgetExceededError
from repro.api import NoisyTopKSpec, run, submit
from repro.net import (
    AccessController,
    AuthenticationError,
    AuthorizationError,
    BackpressureError,
    HttpJobClient,
    JobNotReadyError,
    RateLimitedError,
    TenantPolicy,
    WireError,
    decode_result,
    encode_result,
    serve_broker,
)
from repro.service import JobFailedError, JobNotFoundError, run_workers
from test_service import CHUNK, TRIALS, assert_results_identical

SEED = 11


@pytest.fixture(scope="module")
def queries():
    return np.sort(np.random.default_rng(3).uniform(0.0, 500.0, 40))[::-1].copy()


@pytest.fixture
def top_k_spec(queries):
    return NoisyTopKSpec(queries=queries, epsilon=1.0, k=3, monotonic=True)


@pytest.fixture
def server_factory(tmp_path):
    """Start broker daemons on ephemeral ports; all shut down at teardown."""
    started = []

    def factory(subdir="svc", **kwargs):
        server = serve_broker(tmp_path / subdir, port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return server

    yield factory
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_round_trip_is_bit_identical(self, top_k_spec):
        result = run(top_k_spec, trials=7, rng=SEED)
        assert_results_identical(decode_result(encode_result(result)), result)

    def test_round_trip_preserves_none_arrays(self, top_k_spec):
        result = run(top_k_spec, trials=3, rng=SEED)
        decoded = decode_result(encode_result(result))
        # Top-k results carry no SVT-family arrays; None must survive.
        assert result.above is None and decoded.above is None

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            decode_result(b"NOTAFRAME" + b"\x00" * 32)

    def test_truncated_frame_rejected(self, top_k_spec):
        frame = encode_result(run(top_k_spec, trials=2, rng=SEED))
        with pytest.raises(WireError):
            decode_result(frame[: len(frame) // 2])

    def test_non_result_rejected(self):
        with pytest.raises(TypeError):
            encode_result({"not": "a result"})


# ---------------------------------------------------------------------------
# the determinism contract across the wire
# ---------------------------------------------------------------------------


class TestHttpParity:
    def test_http_result_bit_identical_to_in_process_run(
        self, server_factory, top_k_spec
    ):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=SEED, chunk_trials=CHUNK
        )
        run_workers(server.broker, 3)
        over_http = handle.result(timeout=30.0)
        in_process = run(
            top_k_spec, trials=TRIALS, rng=SEED, shards=3, chunk_trials=CHUNK
        )
        assert_results_identical(over_http, in_process)

    def test_handle_status_and_cancel_round_trip(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(top_k_spec, trials=TRIALS, seed=SEED, chunk_trials=CHUNK)
        status = handle.status()
        assert status.state == "submitted"
        assert status.total_tasks == 5  # 24 trials in chunks of 5
        assert handle.cancel().state == "cancelled"
        with pytest.raises(JobFailedError):
            handle.result(timeout=None)

    def test_facade_submit_over_url(self, server_factory, top_k_spec):
        server = server_factory()
        handle = submit(
            top_k_spec, url=server.url, trials=TRIALS, rng=SEED, chunk_trials=CHUNK
        )
        run_workers(server.broker, 2)
        assert_results_identical(
            handle.result(timeout=30.0),
            run(top_k_spec, trials=TRIALS, rng=SEED, shards=2, chunk_trials=CHUNK),
        )

    def test_facade_requires_exactly_one_transport(self, tmp_path, top_k_spec):
        with pytest.raises(ValueError, match="exactly one"):
            submit(top_k_spec, root=tmp_path, url="http://localhost:1", trials=1)
        with pytest.raises(ValueError, match="exactly one"):
            submit(top_k_spec, trials=1)
        with pytest.raises(ValueError, match="token"):
            submit(top_k_spec, root=tmp_path, token="secret", trials=1)


# ---------------------------------------------------------------------------
# batch status: GET /v1/jobs?ids=...
# ---------------------------------------------------------------------------


class TestBatchStatus:
    def test_batch_matches_individual_statuses(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        handles = [
            client.submit(
                top_k_spec, trials=TRIALS, seed=SEED + i, chunk_trials=CHUNK
            )
            for i in range(3)
        ]
        run_workers(server.broker, 2)
        # A fourth job stays un-drained so the batch spans mixed states.
        handles.append(client.submit(top_k_spec, trials=2, seed=SEED))
        ids = [handle.job_id for handle in handles]
        statuses = client.status_many(ids + ids[:1])  # duplicates collapse
        assert sorted(statuses) == sorted(ids)
        for job_id in ids:
            single = client.status(job_id)
            batch = statuses[job_id]
            assert (batch.state, batch.done_tasks, batch.total_tasks) == (
                single.state,
                single.done_tasks,
                single.total_tasks,
            )
        assert statuses[ids[0]].state == "done"
        assert statuses[ids[-1]].state == "submitted"

    def test_empty_id_list_makes_no_request(self, server_factory):
        server = server_factory()
        server.shutdown()  # a request now would fail loudly
        assert HttpJobClient(server.url).status_many([]) == {}

    def test_unknown_id_refuses_the_whole_batch(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(top_k_spec, trials=1)
        with pytest.raises(JobNotFoundError):
            client.status_many([handle.job_id, "job-nope"])

    def test_cross_tenant_id_refuses_the_whole_batch(
        self, server_factory, top_k_spec
    ):
        server = server_factory(controller=_controller())
        alice = HttpJobClient(server.url, token="alice-secret")
        mine = alice.submit(top_k_spec, trials=1, tenant="alice")
        bob = HttpJobClient(server.url, token="bob-secret")
        theirs = bob.submit(top_k_spec, trials=1, tenant="bob")
        with pytest.raises(AuthorizationError):
            bob.status_many([theirs.job_id, mine.job_id])
        # The same batch under the admin token is fully readable.
        admin = HttpJobClient(server.url, token="op-secret")
        assert len(admin.status_many([theirs.job_id, mine.job_id])) == 2


# ---------------------------------------------------------------------------
# auth: tokens, scopes, admin
# ---------------------------------------------------------------------------


def _controller(**kwargs):
    policies = {
        "alice": TenantPolicy(token="alice-secret", **kwargs),
        "bob": TenantPolicy(token="bob-secret"),
    }
    return AccessController(policies, admin_token="op-secret")


class TestAuth:
    def test_missing_token_is_401(self, server_factory, top_k_spec):
        server = server_factory(controller=_controller())
        with pytest.raises(AuthenticationError):
            HttpJobClient(server.url).submit(top_k_spec, trials=1, tenant="alice")

    def test_wrong_token_is_401(self, server_factory):
        server = server_factory(controller=_controller())
        with pytest.raises(AuthenticationError):
            HttpJobClient(server.url, token="nope").metrics()

    def test_cross_tenant_submit_is_403(self, server_factory, top_k_spec):
        server = server_factory(controller=_controller())
        client = HttpJobClient(server.url, token="alice-secret")
        with pytest.raises(AuthorizationError):
            client.submit(top_k_spec, trials=1, tenant="bob")

    def test_cross_tenant_job_read_is_403(self, server_factory, top_k_spec):
        server = server_factory(controller=_controller())
        alice = HttpJobClient(server.url, token="alice-secret")
        handle = alice.submit(top_k_spec, trials=1, tenant="alice")
        bob = HttpJobClient(server.url, token="bob-secret")
        with pytest.raises(AuthorizationError):
            bob.status(handle.job_id)
        with pytest.raises(AuthorizationError):
            bob.cancel(handle.job_id)

    def test_admin_token_acts_for_any_tenant(self, server_factory, top_k_spec):
        server = server_factory(controller=_controller())
        admin = HttpJobClient(server.url, token="op-secret")
        handle = admin.submit(top_k_spec, trials=1, tenant="alice")
        assert admin.status(handle.job_id).state == "submitted"

    def test_budget_writes_are_admin_only(self, server_factory):
        server = server_factory(controller=_controller())
        alice = HttpJobClient(server.url, token="alice-secret")
        with pytest.raises(AuthorizationError):
            alice.tenant_budget("alice", grant=10.0)
        admin = HttpJobClient(server.url, token="op-secret")
        assert admin.tenant_budget("alice", grant=10.0)["total"] == 10.0
        # Reads of the tenant's own budget stay open to the tenant.
        assert alice.tenant_budget("alice")["total"] == 10.0

    def test_open_server_needs_no_token(self, server_factory):
        server = server_factory()
        assert "queue" in HttpJobClient(server.url).metrics()

    def test_auth_file_round_trip(self, tmp_path):
        path = tmp_path / "auth.json"
        path.write_text(
            json.dumps(
                {
                    "admin_token": "op",
                    "tenants": {
                        "a": {"token": "t", "rate_per_second": 2, "burst": 3,
                              "max_concurrent": 4}
                    },
                }
            )
        )
        controller = AccessController.from_file(path)
        assert not controller.open
        assert controller.authenticate("Bearer t") == "a"
        assert controller.policies["a"].max_concurrent == 4

    def test_auth_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "auth.json"
        path.write_text(
            json.dumps({"tenants": {"a": {"max_concurrency": 4}}})
        )
        with pytest.raises(ValueError, match="max_concurrency"):
            AccessController.from_file(path)


# ---------------------------------------------------------------------------
# admission limits: rate, concurrency, backpressure, budget
# ---------------------------------------------------------------------------


class TestAdmissionLimits:
    def test_rate_limit_refuses_with_retry_after(self, server_factory, top_k_spec):
        server = server_factory(
            controller=_controller(rate_per_second=0.25, burst=1)
        )
        client = HttpJobClient(server.url, token="alice-secret")
        client.submit(top_k_spec, trials=1, seed=1, tenant="alice")
        with pytest.raises(RateLimitedError) as excinfo:
            client.submit(top_k_spec, trials=1, seed=2, tenant="alice")
        assert excinfo.value.retry_after is not None
        assert 0 < excinfo.value.retry_after <= 4.0

    def test_rate_refusal_does_not_consume_tokens(self):
        controller = AccessController({"t": TenantPolicy(rate_per_second=5.0, burst=2)})
        controller.admit("t", active_jobs=0)
        controller.admit("t", active_jobs=0)
        for _ in range(3):  # refusals must not push the bucket further down
            with pytest.raises(RateLimitedError) as excinfo:
                controller.admit("t", active_jobs=0)
        assert excinfo.value.retry_after <= 1.0 / 5.0 + 0.05

    def test_concurrency_cap_counts_unfinished_jobs(
        self, server_factory, top_k_spec
    ):
        server = server_factory(controller=_controller(max_concurrent=1))
        client = HttpJobClient(server.url, token="alice-secret")
        handle = client.submit(top_k_spec, trials=1, seed=1, tenant="alice")
        with pytest.raises(RateLimitedError, match="unfinished"):
            client.submit(top_k_spec, trials=1, seed=2, tenant="alice")
        handle.cancel()  # a finished job frees its slot
        client.submit(top_k_spec, trials=1, seed=3, tenant="alice")

    def test_concurrency_refusal_does_not_burn_rate(self, server_factory, top_k_spec):
        server = server_factory(
            controller=_controller(rate_per_second=100.0, burst=2, max_concurrent=1)
        )
        client = HttpJobClient(server.url, token="alice-secret")
        handle = client.submit(top_k_spec, trials=1, seed=1, tenant="alice")
        for seed in (2, 3, 4):  # refused by the cap, not the bucket
            with pytest.raises(RateLimitedError, match="unfinished"):
                client.submit(top_k_spec, trials=1, seed=seed, tenant="alice")
        handle.cancel()
        client.submit(top_k_spec, trials=1, seed=5, tenant="alice")

    def test_backpressure_refuses_at_queue_cap(self, server_factory, top_k_spec):
        server = server_factory(max_pending=3)
        client = HttpJobClient(server.url)
        # 24 trials in chunks of 5 -> 5 pending tasks >= the cap of 3.
        client.submit(top_k_spec, trials=TRIALS, seed=1, chunk_trials=CHUNK)
        with pytest.raises(BackpressureError) as excinfo:
            client.submit(top_k_spec, trials=1, seed=2)
        assert excinfo.value.retry_after is not None
        run_workers(server.broker, 2)  # drained queue admits again
        client.submit(top_k_spec, trials=1, seed=2)

    def test_over_budget_submit_is_402(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        client.tenant_budget("alice", grant=1.5)  # worst case of 2 trials = 2.0
        with pytest.raises(BudgetExceededError):
            client.submit(top_k_spec, trials=2, tenant="alice")
        client.submit(top_k_spec, trials=1, tenant="alice")  # 1.0 fits


# ---------------------------------------------------------------------------
# error mapping: statuses, bodies, no leaked tracebacks
# ---------------------------------------------------------------------------


def _raw(server, method, path, body=None, headers=None):
    """One raw HTTP exchange, returning (status, headers, body bytes)."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"{server.url}{path}", data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as error:
        with error:
            return error.code, error.headers, error.read()


class TestErrorMapping:
    def test_unknown_job_is_404(self, server_factory):
        server = server_factory()
        status, _, body = _raw(server, "GET", "/v1/jobs/no-such-job")
        assert status == 404
        with pytest.raises(JobNotFoundError):
            HttpJobClient(server.url).status("no-such-job")

    def test_unknown_route_is_404(self, server_factory):
        server = server_factory()
        assert _raw(server, "GET", "/v1/nope")[0] == 404

    def test_wrong_method_is_405(self, server_factory):
        server = server_factory()
        assert _raw(server, "PUT", "/v1/jobs")[0] == 405
        assert _raw(server, "DELETE", "/v1/metrics")[0] == 405

    def test_batch_status_without_ids_is_400(self, server_factory):
        server = server_factory()
        assert _raw(server, "GET", "/v1/jobs")[0] == 400
        assert _raw(server, "GET", "/v1/jobs?ids=")[0] == 400

    def test_malformed_json_body_is_400(self, server_factory):
        server = server_factory()
        request = urllib.request.Request(
            f"{server.url}/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_malformed_spec_is_400(self, server_factory):
        server = server_factory()
        status, _, body = _raw(
            server, "POST", "/v1/jobs",
            body={"spec": {"kind": "noisy-top-k", "epsilon": -1}},
        )
        assert status == 400
        assert b"Traceback" not in body

    def test_missing_spec_is_400(self, server_factory):
        server = server_factory()
        status, _, body = _raw(server, "POST", "/v1/jobs", body={"trials": 3})
        assert status == 400
        assert b"spec" in body

    def test_result_of_running_job_is_retryable_409(
        self, server_factory, top_k_spec
    ):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(top_k_spec, trials=1, seed=1)
        with pytest.raises(JobNotReadyError):
            client.result(handle.job_id, timeout=None)

    def test_result_of_cancelled_job_is_terminal_409(
        self, server_factory, top_k_spec
    ):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(top_k_spec, trials=1, seed=1)
        handle.cancel()
        with pytest.raises(JobFailedError):
            client.result(handle.job_id, timeout=None)

    def test_rate_limit_sets_retry_after_header(self, server_factory, top_k_spec):
        server = server_factory(
            controller=AccessController(
                {"default": TenantPolicy(token="t", rate_per_second=0.5, burst=1)}
            )
        )
        auth = {"Authorization": "Bearer t"}
        payload = {"spec": top_k_spec.to_dict(), "trials": 1}
        assert _raw(server, "POST", "/v1/jobs", payload, auth)[0] == 201
        status, headers, _ = _raw(server, "POST", "/v1/jobs", payload, auth)
        assert status == 429
        assert float(headers["Retry-After"]) > 0

    def test_internal_errors_never_leak_a_traceback(
        self, server_factory, top_k_spec, capfd
    ):
        server = server_factory()
        client = HttpJobClient(server.url)
        handle = client.submit(top_k_spec, trials=1, seed=1)

        def explode(job_id):
            raise RuntimeError("secret internal path /etc/passwd")

        server.broker.manifest = explode
        status, _, body = _raw(server, "GET", f"/v1/jobs/{handle.job_id}")
        assert status == 500
        assert json.loads(body) == {"error": "internal server error"}
        assert b"secret internal path" not in body
        assert b"Traceback" not in body
        capfd.readouterr()  # swallow the handler's stderr log line

    def test_every_error_body_is_json_not_traceback(self, server_factory):
        server = server_factory(controller=_controller())
        probes = [
            ("GET", "/v1/jobs/ghost", None, {}),                      # 401 first
            ("POST", "/v1/jobs", {"trials": 1}, {}),                  # 401
            ("GET", "/v1/jobs/ghost", None,
             {"Authorization": "Bearer op-secret"}),                  # 404
            ("POST", "/v1/jobs", {"spec": {"kind": "bogus"}},
             {"Authorization": "Bearer op-secret"}),                  # 400
            ("POST", "/v1/tenants/a/budget", {"grant": "NaN-ish"},
             {"Authorization": "Bearer op-secret"}),                  # 400
            ("PUT", "/v1/metrics", None, {}),                         # 405
        ]
        for method, path, body, headers in probes:
            status, _, raw = _raw(server, method, path, body, headers)
            assert 400 <= status < 500, (method, path)
            payload = json.loads(raw)  # every refusal is a JSON body
            assert "error" in payload, (method, path)
            assert "Traceback" not in payload["error"], (method, path)


# ---------------------------------------------------------------------------
# operator surface over HTTP
# ---------------------------------------------------------------------------


class TestOperatorSurface:
    def test_metrics_snapshot_matches_root(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        client.submit(top_k_spec, trials=TRIALS, seed=SEED, chunk_trials=CHUNK)
        run_workers(server.broker, 2)
        snapshot = client.metrics()
        assert snapshot["jobs"] == {"done": 1}
        assert snapshot["queue"]["pending"] == 0

    def test_budget_view_none_means_unbounded(self, server_factory):
        server = server_factory()
        view = HttpJobClient(server.url).tenant_budget("ghost-tenant")
        assert view["total"] is None and view["remaining"] is None
        assert view["spent"] == 0.0

    def test_grant_and_refund_round_trip(self, server_factory, top_k_spec):
        server = server_factory()
        client = HttpJobClient(server.url)
        assert client.tenant_budget("a", grant=30.0)["total"] == 30.0
        client.submit(top_k_spec, trials=2, tenant="a")  # worst-case charge 2.0
        view = client.tenant_budget("a")
        assert view["spent"] == pytest.approx(2.0)
        assert view["remaining"] == pytest.approx(28.0)
        assert client.tenant_budget("a", refund=1.0)["spent"] == pytest.approx(1.0)
