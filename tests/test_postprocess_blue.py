"""Unit tests for the BLUE fusion of Theorem 3 / Corollary 1."""

import numpy as np
import pytest

from repro.postprocess.blue import (
    blue_matrices,
    blue_top_k_estimate,
    blue_variance_ratio,
)


class TestBlueMatrices:
    def test_shapes(self):
        x, y = blue_matrices(k=4, lam=1.0)
        assert x.shape == (4, 4)
        assert y.shape == (4, 3)

    def test_k_equals_one(self):
        x, y = blue_matrices(k=1, lam=1.0)
        assert x.shape == (1, 1)
        assert y.shape == (1, 0)
        assert x[0, 0] == pytest.approx(1.0 + 1.0)

    def test_x_structure(self):
        k, lam = 3, 2.0
        x, _ = blue_matrices(k, lam)
        expected = np.ones((k, k)) + lam * k * np.eye(k)
        np.testing.assert_allclose(x, expected)

    def test_y_structure_matches_paper_for_k3(self):
        _, y = blue_matrices(k=3, lam=1.0)
        expected = np.array(
            [
                [2.0, 1.0],
                [2.0 - 3.0, 1.0],
                [2.0 - 3.0, 1.0 - 3.0],
            ]
        )
        np.testing.assert_allclose(y, expected)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            blue_matrices(0, 1.0)
        with pytest.raises(ValueError):
            blue_matrices(3, 0.0)


class TestBlueEstimate:
    def test_matches_matrix_formula(self):
        rng = np.random.default_rng(0)
        k, lam = 6, 1.7
        alpha = rng.uniform(0, 100, k)
        gaps = rng.uniform(0, 10, k - 1)
        x, y = blue_matrices(k, lam)
        expected = (x @ alpha + y @ gaps) / ((1 + lam) * k)
        np.testing.assert_allclose(blue_top_k_estimate(alpha, gaps, lam), expected)

    def test_k_equals_one_returns_measurement(self):
        np.testing.assert_allclose(blue_top_k_estimate([42.0], []), [42.0])

    def test_unbiasedness_zero_noise(self):
        # With exact measurements and exact gaps, the estimate must recover
        # the true values exactly (unbiasedness on noiseless inputs).
        truths = np.array([100.0, 80.0, 50.0, 20.0])
        gaps = -np.diff(truths)
        np.testing.assert_allclose(
            blue_top_k_estimate(truths, gaps, lam=1.0), truths, atol=1e-9
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            blue_top_k_estimate([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            blue_top_k_estimate(np.zeros((2, 2)), [1.0])
        with pytest.raises(ValueError):
            blue_top_k_estimate([1.0, 2.0], [1.0], lam=0.0)
        with pytest.raises(ValueError):
            blue_top_k_estimate([], [])

    def test_empirical_variance_reduction_matches_corollary1(self):
        # Simulate the paper's setting: measurements with variance sigma^2 and
        # gaps from noisy values with the same per-query variance (lambda=1).
        rng = np.random.default_rng(1)
        k = 8
        truths = np.linspace(200, 60, k)
        sigma = 5.0
        trials = 4000
        baseline_errors = np.zeros((trials, k))
        fused_errors = np.zeros((trials, k))
        for t in range(trials):
            xi = rng.laplace(0, sigma / np.sqrt(2), k)
            eta = rng.laplace(0, sigma / np.sqrt(2), k)
            alpha = truths + xi
            gaps = (truths[:-1] + eta[:-1]) - (truths[1:] + eta[1:])
            beta = blue_top_k_estimate(alpha, gaps, lam=1.0)
            baseline_errors[t] = (alpha - truths) ** 2
            fused_errors[t] = (beta - truths) ** 2
        ratio = fused_errors.mean() / baseline_errors.mean()
        assert ratio == pytest.approx(blue_variance_ratio(k, 1.0), rel=0.05)

    def test_estimates_preserve_gap_structure_direction(self):
        # Fused estimates should remain (weakly) ordered when gaps are positive
        # and measurements are consistent.
        alpha = np.array([100.0, 90.0, 70.0])
        gaps = np.array([10.0, 20.0])
        beta = blue_top_k_estimate(alpha, gaps, lam=1.0)
        assert beta[0] >= beta[1] >= beta[2]


class TestVarianceRatio:
    def test_counting_query_case(self):
        assert blue_variance_ratio(10, 1.0) == pytest.approx(11.0 / 20.0)

    def test_improvement_approaches_half(self):
        assert 1 - blue_variance_ratio(1000, 1.0) == pytest.approx(0.5, abs=1e-3)

    def test_k_one_gives_no_improvement(self):
        assert blue_variance_ratio(1, 1.0) == pytest.approx(1.0)

    def test_monotone_decreasing_in_k(self):
        ratios = [blue_variance_ratio(k, 1.0) for k in range(1, 30)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            blue_variance_ratio(0, 1.0)
        with pytest.raises(ValueError):
            blue_variance_ratio(5, -1.0)
