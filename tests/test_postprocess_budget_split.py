"""Tests for the selection/measurement budget-split analysis."""

import numpy as np
import pytest

from repro.analysis.variance import measurement_variance
from repro.postprocess.budget_split import (
    fused_variance_for_split,
    minimum_selection_fraction,
    optimal_selection_fraction,
    split_improvement_over_even,
)


class TestFusedVarianceForSplit:
    def test_even_split_matches_corollary1(self):
        # At the paper's even split on counting queries lambda = 1, so the
        # fused variance is measurement_variance * (1 + k) / (2k).
        epsilon, k = 0.7, 10
        fused = fused_variance_for_split(epsilon, k, 0.5, monotonic=True)
        expected = measurement_variance(epsilon, k) * (1 + k) / (2 * k)
        assert fused == pytest.approx(expected)

    def test_vectorised_input(self):
        values = fused_variance_for_split(1.0, 5, np.array([0.3, 0.5, 0.7]))
        assert values.shape == (3,)
        assert np.all(values > 0)

    def test_decreasing_in_measurement_budget(self):
        # Under the pure variance model, shifting budget towards measurement
        # (smaller rho) always reduces the fused variance -- the reason the
        # optimisation must be constrained by selection accuracy.
        values = fused_variance_for_split(1.0, 5, np.array([0.2, 0.5, 0.8]))
        assert values[0] < values[1] < values[2]

    def test_monotonic_beats_general_at_same_split(self):
        assert fused_variance_for_split(1.0, 5, 0.5, True) < fused_variance_for_split(
            1.0, 5, 0.5, False
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            fused_variance_for_split(0.0, 5, 0.5)
        with pytest.raises(ValueError):
            fused_variance_for_split(1.0, 0, 0.5)
        with pytest.raises(ValueError):
            fused_variance_for_split(1.0, 5, 1.0)
        with pytest.raises(ValueError):
            fused_variance_for_split(1.0, 5, 0.0)

    def test_simulation_confirms_formula_at_even_split(self):
        # Cross-check the analytic fused variance against simulation of the
        # BLUE estimator at the even split (monotonic counting queries).
        from repro.postprocess.blue import blue_top_k_estimate

        rng = np.random.default_rng(0)
        epsilon, k = 1.0, 6
        truths = np.linspace(1000, 400, k)
        measurement_scale = k / (0.5 * epsilon)
        selection_scale = k / (0.5 * epsilon)
        errors = []
        for _ in range(4000):
            alpha = truths + rng.laplace(0, measurement_scale, k)
            eta = rng.laplace(0, selection_scale, k)
            gaps = (truths[:-1] + eta[:-1]) - (truths[1:] + eta[1:])
            beta = blue_top_k_estimate(alpha, gaps, lam=1.0)
            errors.append(np.mean((beta - truths) ** 2))
        simulated = float(np.mean(errors))
        analytic = fused_variance_for_split(epsilon, k, 0.5, monotonic=True)
        assert simulated == pytest.approx(analytic, rel=0.1)


class TestMinimumSelectionFraction:
    def test_larger_separation_needs_less_selection_budget(self):
        small = minimum_selection_fraction(
            0.7, 10, separation=100.0, num_queries=1000
        )
        large = minimum_selection_fraction(
            0.7, 10, separation=1000.0, num_queries=1000
        )
        assert large < small

    def test_more_competitors_need_more_selection_budget(self):
        few = minimum_selection_fraction(0.7, 10, separation=500.0, num_queries=100)
        many = minimum_selection_fraction(0.7, 10, separation=500.0, num_queries=10000)
        assert many > few

    def test_clipped_to_unit_interval(self):
        # A hopelessly small separation cannot be met even with all budget.
        rho = minimum_selection_fraction(0.1, 25, separation=0.5, num_queries=10000)
        assert rho == pytest.approx(0.999)
        # A huge separation needs essentially nothing.
        rho = minimum_selection_fraction(10.0, 2, separation=1e9, num_queries=10)
        assert rho == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_selection_fraction(0.7, 10, separation=0.0, num_queries=100)
        with pytest.raises(ValueError):
            minimum_selection_fraction(
                0.7, 10, separation=10.0, num_queries=1, target_probability=0.9
            )


class TestOptimalSplit:
    def test_optimum_equals_minimum_feasible_fraction(self):
        args = dict(
            total_epsilon=0.7, k=10, separation=800.0, num_queries=1657
        )
        assert optimal_selection_fraction(**args) == pytest.approx(
            minimum_selection_fraction(**args)
        )

    def test_improvement_positive_for_well_separated_workloads(self):
        # BMS-POS-like top counts are separated by hundreds at full scale, so
        # the constrained optimum spends less than half on selection and the
        # fused MSE improves over the even split.
        gain = split_improvement_over_even(
            0.7, 10, separation=2000.0, num_queries=1657
        )
        assert gain > 0.0

    def test_improvement_nonpositive_when_separation_is_tight(self):
        gain = split_improvement_over_even(0.7, 10, separation=5.0, num_queries=1657)
        assert gain <= 0.0
