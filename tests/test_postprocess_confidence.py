"""Unit tests for the Lemma 5 confidence bounds."""

import numpy as np
import pytest

from repro.postprocess.confidence import (
    gap_lower_confidence_bound,
    laplace_difference_cdf,
    laplace_difference_pdf,
    laplace_difference_tail,
)


class TestLaplaceDifferencePdf:
    def test_symmetric(self):
        assert laplace_difference_pdf(2.0, 1.0, 3.0) == pytest.approx(
            laplace_difference_pdf(-2.0, 1.0, 3.0)
        )

    def test_integrates_to_one_unequal_scales(self):
        xs = np.linspace(-80, 80, 400_001)
        total = np.trapezoid(laplace_difference_pdf(xs, 0.8, 2.0), xs)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_integrates_to_one_equal_scales(self):
        xs = np.linspace(-80, 80, 400_001)
        total = np.trapezoid(laplace_difference_pdf(xs, 1.5, 1.5), xs)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        eps0, eps_star = 1.0, 2.5
        samples = rng.laplace(0, 1 / eps_star, 300_000) - rng.laplace(
            0, 1 / eps0, 300_000
        )
        hist, edges = np.histogram(samples, bins=80, range=(-4, 4), density=True)
        centres = 0.5 * (edges[:-1] + edges[1:])
        np.testing.assert_allclose(
            hist, laplace_difference_pdf(centres, eps0, eps_star), atol=0.03
        )

    def test_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            laplace_difference_pdf(0.0, 0.0, 1.0)


class TestLaplaceDifferenceTail:
    def test_tail_at_zero_is_half(self):
        assert laplace_difference_tail(0.0, 1.0, 2.0) == pytest.approx(0.5)
        assert laplace_difference_tail(0.0, 1.3, 1.3) == pytest.approx(0.5)

    def test_tail_increases_to_one(self):
        ts = np.linspace(0, 20, 50)
        tails = laplace_difference_tail(ts, 1.0, 2.0)
        assert np.all(np.diff(tails) >= 0)
        assert tails[-1] == pytest.approx(1.0, abs=1e-6)

    def test_matches_monte_carlo_unequal(self):
        rng = np.random.default_rng(1)
        eps0, eps_star = 0.7, 1.9
        samples = rng.laplace(0, 1 / eps_star, 400_000) - rng.laplace(
            0, 1 / eps0, 400_000
        )
        for t in (0.5, 1.0, 2.0):
            empirical = np.mean(samples >= -t)
            assert empirical == pytest.approx(
                laplace_difference_tail(t, eps0, eps_star), abs=0.01
            )

    def test_matches_monte_carlo_equal(self):
        rng = np.random.default_rng(2)
        eps = 1.1
        samples = rng.laplace(0, 1 / eps, 400_000) - rng.laplace(0, 1 / eps, 400_000)
        for t in (0.5, 1.5):
            empirical = np.mean(samples >= -t)
            assert empirical == pytest.approx(
                laplace_difference_tail(t, eps, eps), abs=0.01
            )

    def test_consistent_with_pdf_integral(self):
        eps0, eps_star = 1.0, 2.0
        xs = np.linspace(-1.5, 60, 400_001)
        integral = np.trapezoid(laplace_difference_pdf(xs, eps0, eps_star), xs)
        assert integral == pytest.approx(
            laplace_difference_tail(1.5, eps0, eps_star), abs=1e-4
        )

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            laplace_difference_tail(-1.0, 1.0, 1.0)


class TestLaplaceDifferenceCdf:
    def test_median_is_half(self):
        assert laplace_difference_cdf(0.0, 1.0, 2.0) == pytest.approx(0.5)

    def test_symmetry(self):
        value = laplace_difference_cdf(1.2, 1.0, 2.0) + laplace_difference_cdf(
            -1.2, 1.0, 2.0
        )
        assert value == pytest.approx(1.0)

    def test_monotone(self):
        xs = np.linspace(-10, 10, 101)
        values = laplace_difference_cdf(xs, 0.9, 1.7)
        assert np.all(np.diff(values) >= -1e-12)


class TestGapLowerConfidenceBound:
    def test_bound_below_point_estimate(self):
        bound = gap_lower_confidence_bound(
            gap=10.0, threshold=100.0, eps0=0.5, eps_star=1.0, confidence=0.95
        )
        assert bound < 110.0

    def test_higher_confidence_gives_lower_bound(self):
        b90 = gap_lower_confidence_bound(5.0, 100.0, 0.5, 1.0, confidence=0.90)
        b99 = gap_lower_confidence_bound(5.0, 100.0, 0.5, 1.0, confidence=0.99)
        assert b99 < b90

    def test_coverage_empirically(self):
        # The true answer should exceed the bound with (at least) the stated
        # confidence.
        rng = np.random.default_rng(3)
        eps0, eps_star = 0.6, 1.2
        truth, threshold = 300.0, 250.0
        confidence = 0.9
        covered = 0
        trials = 4000
        for _ in range(trials):
            eta0 = rng.laplace(0, 1 / eps0)
            eta = rng.laplace(0, 1 / eps_star)
            gap = truth + eta - (threshold + eta0)
            bound = gap_lower_confidence_bound(
                gap, threshold, eps0, eps_star, confidence=confidence
            )
            covered += truth >= bound
        assert covered / trials >= confidence - 0.02

    def test_confidence_at_most_half_returns_point_estimate(self):
        bound = gap_lower_confidence_bound(5.0, 100.0, 1.0, 1.0, confidence=0.5 - 1e-9)
        assert bound == pytest.approx(105.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            gap_lower_confidence_bound(1.0, 0.0, 1.0, 1.0, confidence=1.0)
        with pytest.raises(ValueError):
            gap_lower_confidence_bound(1.0, 0.0, 1.0, 1.0, confidence=0.0)
