"""Tests for the ordering-consistency post-processing (isotonic projection)."""

import numpy as np
import pytest

from repro.postprocess.blue import blue_top_k_estimate
from repro.postprocess.consistency import (
    consistent_top_k_estimate,
    isotonic_nonincreasing,
    ordering_violations,
)


class TestIsotonicNonincreasing:
    def test_already_monotone_unchanged(self):
        values = [5.0, 4.0, 3.0, 1.0]
        np.testing.assert_allclose(isotonic_nonincreasing(values), values)

    def test_simple_inversion_pooled(self):
        np.testing.assert_allclose(
            isotonic_nonincreasing([3.0, 5.0, 1.0]), [4.0, 4.0, 1.0]
        )

    def test_output_is_nonincreasing(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            values = rng.normal(0, 10, rng.integers(1, 30))
            projected = isotonic_nonincreasing(values)
            assert np.all(np.diff(projected) <= 1e-9)

    def test_projection_is_idempotent(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 5, 20)
        once = isotonic_nonincreasing(values)
        twice = isotonic_nonincreasing(once)
        np.testing.assert_allclose(once, twice)

    def test_preserves_weighted_mean(self):
        # Pooling preserves the (weighted) total, a standard PAVA property.
        rng = np.random.default_rng(2)
        values = rng.normal(0, 5, 15)
        weights = rng.uniform(0.5, 2.0, 15)
        projected = isotonic_nonincreasing(values, weights)
        assert np.dot(projected, weights) == pytest.approx(np.dot(values, weights))

    def test_weights_pull_towards_heavier_point(self):
        light_first = isotonic_nonincreasing([0.0, 10.0], weights=[1.0, 9.0])
        heavy_first = isotonic_nonincreasing([0.0, 10.0], weights=[9.0, 1.0])
        assert light_first[0] > heavy_first[0]

    def test_never_increases_distance_to_any_monotone_target(self):
        # Projection onto a convex set is non-expansive towards members of
        # the set; in particular the distance to the sorted truth never grows.
        rng = np.random.default_rng(3)
        for _ in range(30):
            truth = np.sort(rng.uniform(0, 100, 10))[::-1]
            noisy = truth + rng.normal(0, 5, 10)
            projected = isotonic_nonincreasing(noisy)
            assert np.sum((projected - truth) ** 2) <= np.sum((noisy - truth) ** 2) + 1e-9

    def test_empty_and_singleton(self):
        assert isotonic_nonincreasing([]).size == 0
        np.testing.assert_allclose(isotonic_nonincreasing([7.0]), [7.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            isotonic_nonincreasing(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            isotonic_nonincreasing([1.0, 2.0], weights=[1.0])
        with pytest.raises(ValueError):
            isotonic_nonincreasing([1.0, 2.0], weights=[1.0, 0.0])


class TestConsistentTopKEstimate:
    def test_output_is_nonincreasing(self):
        rng = np.random.default_rng(4)
        for _ in range(30):
            k = 8
            measurements = rng.uniform(0, 100, k)
            gaps = rng.uniform(0, 5, k - 1)
            estimates = consistent_top_k_estimate(measurements, gaps)
            assert ordering_violations(estimates) == 0

    def test_matches_blue_when_projection_disabled(self):
        measurements = [10.0, 30.0, 5.0]
        gaps = [1.0, 2.0]
        raw = blue_top_k_estimate(measurements, gaps)
        unprojected = consistent_top_k_estimate(
            measurements, gaps, enforce_nonnegative_gaps=False
        )
        np.testing.assert_allclose(unprojected, raw)

    def test_error_not_worse_than_blue_on_sorted_truth(self):
        rng = np.random.default_rng(5)
        k = 10
        truth = np.sort(rng.uniform(100, 1000, k))[::-1]
        blue_errors, consistent_errors = [], []
        for _ in range(300):
            xi = rng.laplace(0, 5, k)
            eta = rng.laplace(0, 5, k)
            measurements = truth + xi
            gaps = (truth[:-1] + eta[:-1]) - (truth[1:] + eta[1:])
            blue = blue_top_k_estimate(measurements, gaps)
            consistent = consistent_top_k_estimate(measurements, gaps)
            blue_errors.append(np.sum((blue - truth) ** 2))
            consistent_errors.append(np.sum((consistent - truth) ** 2))
        assert np.mean(consistent_errors) <= np.mean(blue_errors) + 1e-9

    def test_single_query_passthrough(self):
        np.testing.assert_allclose(consistent_top_k_estimate([42.0], []), [42.0])


class TestOrderingViolations:
    def test_counts_adjacent_inversions(self):
        assert ordering_violations([5.0, 6.0, 4.0, 4.5]) == 2
        assert ordering_violations([5.0, 4.0, 3.0]) == 0

    def test_short_sequences(self):
        assert ordering_violations([]) == 0
        assert ordering_violations([1.0]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ordering_violations(np.zeros((2, 2)))
