"""Unit tests for the SVT gap/measurement fusion of Section 6.2."""

import numpy as np
import pytest

from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.mechanisms.sparse_vector import SparseVectorWithGap, SvtBranch
from repro.postprocess.svt_fusion import (
    fuse_gap_and_measurement,
    fused_variance,
    svt_gap_estimates,
)


class TestFuseGapAndMeasurement:
    def test_equal_variances_give_simple_average(self):
        fused = fuse_gap_and_measurement([10.0], [4.0], [20.0], 4.0)
        assert fused[0] == pytest.approx(15.0)

    def test_weights_favour_lower_variance(self):
        fused = fuse_gap_and_measurement([10.0], [1.0], [20.0], 9.0)
        assert fused[0] == pytest.approx((9 * 10 + 1 * 20) / 10.0)

    def test_vectorised(self):
        fused = fuse_gap_and_measurement([1.0, 2.0], [1.0, 1.0], [3.0, 4.0], 1.0)
        np.testing.assert_allclose(fused, [2.0, 3.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fuse_gap_and_measurement([1.0, 2.0], [1.0, 1.0], [3.0], 1.0)
        with pytest.raises(ValueError):
            fuse_gap_and_measurement([1.0], [1.0, 2.0], [3.0], 1.0)

    def test_variance_validation(self):
        with pytest.raises(ValueError):
            fuse_gap_and_measurement([1.0], [0.0], [3.0], 1.0)
        with pytest.raises(ValueError):
            fuse_gap_and_measurement([1.0], [1.0], [3.0], 0.0)

    def test_empirical_variance_reduction(self):
        # Combining two independent unbiased estimates must reduce variance to
        # the harmonic mean value.
        rng = np.random.default_rng(0)
        truth = 50.0
        var_a, var_b = 16.0, 4.0
        n = 40_000
        a = truth + rng.normal(0, np.sqrt(var_a), n)
        b = truth + rng.normal(0, np.sqrt(var_b), n)
        fused = fuse_gap_and_measurement(a, np.full(n, var_a), b, var_b)
        assert np.var(fused) == pytest.approx(fused_variance(var_a, var_b), rel=0.05)
        assert np.mean(fused) == pytest.approx(truth, abs=0.1)


class TestFusedVariance:
    def test_formula(self):
        assert fused_variance(4.0, 4.0) == pytest.approx(2.0)

    def test_always_below_both_inputs(self):
        assert fused_variance(3.0, 10.0) < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fused_variance(0.0, 1.0)


class TestSvtGapEstimates:
    def test_extracts_gap_plus_threshold(self):
        values = np.full(10, 1000.0)
        svt = SparseVectorWithGap(epsilon=2.0, threshold=100.0, k=3, monotonic=True)
        result = svt.run(values, rng=0)
        indices, estimates, variances = svt_gap_estimates(result)
        assert len(indices) == result.num_answered
        np.testing.assert_allclose(estimates, np.asarray(result.gaps) + 100.0)
        assert np.all(variances > 0)

    def test_uses_metadata_threshold_by_default(self):
        values = np.full(5, 1000.0)
        svt = SparseVectorWithGap(epsilon=2.0, threshold=50.0, k=2, monotonic=True)
        result = svt.run(values, rng=0)
        _, estimates_default, _ = svt_gap_estimates(result)
        _, estimates_explicit, _ = svt_gap_estimates(result, threshold=50.0)
        np.testing.assert_allclose(estimates_default, estimates_explicit)

    def test_per_branch_variances_for_adaptive(self):
        values = np.full(30, 1e6)
        mech = AdaptiveSparseVectorWithGap(
            epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        result = mech.run(values, rng=0)
        variance_map = {
            SvtBranch.TOP: mech.gap_variance(SvtBranch.TOP),
            SvtBranch.MIDDLE: mech.gap_variance(SvtBranch.MIDDLE),
        }
        _, _, variances = svt_gap_estimates(result, gap_variances=variance_map)
        assert set(np.round(variances, 6)).issubset(
            {round(v, 6) for v in variance_map.values()}
        )

    def test_missing_branch_variance_raises(self):
        values = np.full(30, 1e6)
        mech = AdaptiveSparseVectorWithGap(
            epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        result = mech.run(values, rng=0)
        with pytest.raises(ValueError):
            svt_gap_estimates(result, gap_variances={SvtBranch.MIDDLE: 1.0})

    def test_missing_variance_information_raises(self):
        values = np.full(30, 1e6)
        mech = AdaptiveSparseVectorWithGap(
            epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        result = mech.run(values, rng=0)
        # The adaptive mechanism does not write a single "gap_variance" key, so
        # omitting the per-branch map must raise.
        with pytest.raises(ValueError):
            svt_gap_estimates(result)
