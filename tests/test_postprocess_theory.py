"""Unit tests for the closed-form expected-improvement curves."""

import numpy as np
import pytest

from repro.postprocess.blue import blue_variance_ratio
from repro.postprocess.theory import (
    svt_expected_improvement,
    svt_limit_improvement,
    top_k_expected_improvement,
    top_k_limit_improvement,
)


class TestTopKExpectedImprovement:
    def test_counting_query_formula(self):
        # For lambda = 1 the improvement is (k - 1) / 2k.
        for k in (1, 2, 5, 10, 25):
            assert top_k_expected_improvement(k, lam=1.0) == pytest.approx(
                (k - 1) / (2.0 * k)
            )

    def test_consistent_with_variance_ratio(self):
        for k in (2, 7, 20):
            assert top_k_expected_improvement(k, 1.0) == pytest.approx(
                1.0 - blue_variance_ratio(k, 1.0)
            )

    def test_zero_improvement_at_k_one(self):
        assert top_k_expected_improvement(1) == pytest.approx(0.0)

    def test_increasing_in_k(self):
        values = top_k_expected_improvement(np.arange(1, 40), lam=1.0)
        assert np.all(np.diff(values) > 0)

    def test_limit_is_half_for_lambda_one(self):
        assert top_k_limit_improvement(1.0) == pytest.approx(0.5)
        assert top_k_expected_improvement(10_000) == pytest.approx(0.5, abs=1e-3)

    def test_vectorised_input(self):
        values = top_k_expected_improvement(np.array([2, 4, 8]))
        assert values.shape == (3,)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            top_k_expected_improvement(0)
        with pytest.raises(ValueError):
            top_k_expected_improvement(5, lam=0.0)
        with pytest.raises(ValueError):
            top_k_limit_improvement(0.0)


class TestSvtExpectedImprovement:
    def test_monotonic_formula(self):
        k = 10
        c = k ** (2.0 / 3.0)
        expected = 1.0 - (1.0 + c) ** 3 / ((1.0 + c) ** 3 + k**2)
        assert svt_expected_improvement(k, monotonic=True) == pytest.approx(expected)

    def test_general_formula(self):
        k = 10
        c = (2.0 * k) ** (2.0 / 3.0)
        expected = 1.0 - (1.0 + c) ** 3 / ((1.0 + c) ** 3 + k**2)
        assert svt_expected_improvement(k, monotonic=False) == pytest.approx(expected)

    def test_limits(self):
        assert svt_limit_improvement(True) == pytest.approx(0.5)
        assert svt_limit_improvement(False) == pytest.approx(0.2)
        assert svt_expected_improvement(10**7, monotonic=True) == pytest.approx(
            0.5, abs=1e-2
        )
        assert svt_expected_improvement(10**7, monotonic=False) == pytest.approx(
            0.2, abs=1e-2
        )

    def test_monotonic_better_than_general(self):
        for k in (5, 10, 25):
            assert svt_expected_improvement(k, True) > svt_expected_improvement(k, False)

    def test_vectorised_input(self):
        values = svt_expected_improvement(np.array([2, 10, 25]), monotonic=True)
        assert values.shape == (3,)
        assert np.all((values > 0) & (values < 0.5))

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            svt_expected_improvement(0)
