"""Unit tests for the discrete Laplace, geometric and staircase primitives."""

import numpy as np
import pytest

from repro.primitives.discrete_laplace import DiscreteLaplaceNoise
from repro.primitives.geometric import GeometricNoise
from repro.primitives.staircase import StaircaseNoise


class TestDiscreteLaplace:
    def test_samples_lie_on_lattice(self):
        noise = DiscreteLaplaceNoise(scale=2.0, base=0.5)
        samples = noise.sample(size=1000, rng=0)
        np.testing.assert_allclose(samples, np.round(samples / 0.5) * 0.5, atol=1e-12)

    def test_scalar_sample(self):
        value = DiscreteLaplaceNoise(scale=1.0).sample(rng=0)
        assert isinstance(value, float)

    def test_mass_sums_to_one(self):
        noise = DiscreteLaplaceNoise(scale=1.0, base=1.0)
        ks = np.arange(-200, 201, dtype=float)
        assert np.sum(noise.density(ks)) == pytest.approx(1.0, abs=1e-10)

    def test_off_lattice_has_zero_mass(self):
        noise = DiscreteLaplaceNoise(scale=1.0, base=1.0)
        assert noise.density(0.5) == pytest.approx(0.0)

    def test_symmetric_mass(self):
        noise = DiscreteLaplaceNoise(scale=1.3, base=1.0)
        assert noise.density(4.0) == pytest.approx(noise.density(-4.0))

    def test_empirical_variance_matches(self):
        noise = DiscreteLaplaceNoise(scale=2.0, base=1.0)
        samples = noise.sample(size=200_000, rng=1)
        assert np.var(samples) == pytest.approx(noise.variance, rel=0.05)

    def test_log_density_ratio_bounded(self):
        noise = DiscreteLaplaceNoise(scale=2.0, base=1.0)
        ratio = float(noise.log_density_ratio(3.0, 1.0))
        assert ratio <= 2.0 / noise.alignment_scale + 1e-12

    def test_tie_probability_bound_scales_with_n(self):
        noise = DiscreteLaplaceNoise(scale=1.0, base=2**-52)
        small = noise.tie_probability_bound(10)
        large = noise.tie_probability_bound(1000)
        assert small < large < 1e-6

    def test_tie_probability_bound_clipped_at_one(self):
        noise = DiscreteLaplaceNoise(scale=1.0, base=1.0)
        assert noise.tie_probability_bound(10**6) == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DiscreteLaplaceNoise(scale=0.0)
        with pytest.raises(ValueError):
            DiscreteLaplaceNoise(scale=1.0, base=0.0)
        with pytest.raises(ValueError):
            DiscreteLaplaceNoise(scale=1.0).tie_probability_bound(-1)


class TestGeometricNoise:
    def test_alpha_formula(self):
        noise = GeometricNoise(epsilon=1.0)
        assert noise.alpha == pytest.approx(np.exp(-1.0))

    def test_samples_are_integers(self):
        samples = GeometricNoise(epsilon=0.5).sample(size=1000, rng=0)
        np.testing.assert_allclose(samples, np.round(samples))

    def test_mass_sums_to_one(self):
        noise = GeometricNoise(epsilon=0.5)
        ks = np.arange(-400, 401, dtype=float)
        assert np.sum(noise.density(ks)) == pytest.approx(1.0, abs=1e-9)

    def test_empirical_variance(self):
        noise = GeometricNoise(epsilon=0.8)
        samples = noise.sample(size=200_000, rng=2)
        assert np.var(samples) == pytest.approx(noise.variance, rel=0.05)

    def test_alignment_scale(self):
        noise = GeometricNoise(epsilon=0.5, sensitivity=2.0)
        assert noise.alignment_scale == pytest.approx(4.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GeometricNoise(epsilon=0.0)
        with pytest.raises(ValueError):
            GeometricNoise(epsilon=1.0, sensitivity=0.0)


class TestStaircaseNoise:
    def test_default_gamma_is_optimal(self):
        noise = StaircaseNoise(epsilon=1.0)
        assert noise.gamma == pytest.approx(1.0 / (1.0 + np.exp(0.5)))

    def test_density_integrates_to_one(self):
        noise = StaircaseNoise(epsilon=1.0)
        xs = np.linspace(-40, 40, 400_001)
        assert np.trapezoid(noise.density(xs), xs) == pytest.approx(1.0, abs=1e-3)

    def test_density_ratio_respects_epsilon_across_one_sensitivity(self):
        noise = StaircaseNoise(epsilon=1.0, sensitivity=1.0)
        xs = np.linspace(-5, 5, 101)
        ratio = noise.log_density(xs) - noise.log_density(xs + 1.0)
        assert np.max(np.abs(ratio)) <= 1.0 + 1e-9

    def test_empirical_variance_close_to_formula(self):
        noise = StaircaseNoise(epsilon=1.0)
        samples = noise.sample(size=300_000, rng=4)
        assert np.var(samples) == pytest.approx(noise.variance, rel=0.05)

    def test_empirical_mean_zero(self):
        noise = StaircaseNoise(epsilon=1.5)
        samples = noise.sample(size=200_000, rng=5)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.03)

    def test_scalar_sample(self):
        assert isinstance(StaircaseNoise(epsilon=1.0).sample(rng=0), float)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StaircaseNoise(epsilon=0.0)
        with pytest.raises(ValueError):
            StaircaseNoise(epsilon=1.0, sensitivity=-1.0)
        with pytest.raises(ValueError):
            StaircaseNoise(epsilon=1.0, gamma=1.5)
