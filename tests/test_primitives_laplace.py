"""Unit tests for the continuous Laplace noise primitive."""

import numpy as np
import pytest

from repro.primitives.laplace import (
    LaplaceNoise,
    laplace_cdf,
    laplace_pdf,
    laplace_quantile,
)


class TestLaplacePdf:
    def test_peak_at_zero(self):
        assert laplace_pdf(0.0, scale=1.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert laplace_pdf(3.0, scale=2.0) == pytest.approx(laplace_pdf(-3.0, scale=2.0))

    def test_location_shift(self):
        assert laplace_pdf(5.0, scale=1.0, loc=5.0) == pytest.approx(0.5)

    def test_integrates_to_one(self):
        xs = np.linspace(-60, 60, 200_001)
        total = np.trapezoid(laplace_pdf(xs, scale=2.0), xs)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            laplace_pdf(0.0, scale=0.0)
        with pytest.raises(ValueError):
            laplace_pdf(0.0, scale=-1.0)


class TestLaplaceCdf:
    def test_median(self):
        assert laplace_cdf(0.0, scale=1.0) == pytest.approx(0.5)

    def test_monotone(self):
        xs = np.linspace(-10, 10, 101)
        values = laplace_cdf(xs, scale=1.5)
        assert np.all(np.diff(values) >= 0)

    def test_limits(self):
        assert laplace_cdf(-100.0, scale=1.0) == pytest.approx(0.0, abs=1e-12)
        assert laplace_cdf(100.0, scale=1.0) == pytest.approx(1.0, abs=1e-12)

    def test_consistent_with_pdf(self):
        xs = np.linspace(-20, 4.3, 400_001)
        integral = np.trapezoid(laplace_pdf(xs, scale=1.3), xs)
        assert integral == pytest.approx(laplace_cdf(4.3, scale=1.3), abs=1e-5)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            laplace_cdf(0.0, scale=0.0)


class TestLaplaceQuantile:
    def test_median_is_zero(self):
        assert laplace_quantile(0.5, scale=3.0) == pytest.approx(0.0)

    def test_round_trip_with_cdf(self):
        for p in (0.01, 0.2, 0.5, 0.7, 0.99):
            x = laplace_quantile(p, scale=2.0)
            assert laplace_cdf(x, scale=2.0) == pytest.approx(p, abs=1e-12)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            laplace_quantile(0.0, scale=1.0)
        with pytest.raises(ValueError):
            laplace_quantile(1.0, scale=1.0)


class TestLaplaceNoise:
    def test_variance_formula(self):
        assert LaplaceNoise(scale=2.0).variance == pytest.approx(8.0)

    def test_alignment_scale_equals_scale(self):
        noise = LaplaceNoise(scale=1.7)
        assert noise.alignment_scale == pytest.approx(1.7)

    def test_calibrated_scale(self):
        noise = LaplaceNoise.calibrated(sensitivity=2.0, epsilon=0.5)
        assert noise.scale == pytest.approx(4.0)

    def test_calibrated_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LaplaceNoise.calibrated(sensitivity=0.0, epsilon=1.0)
        with pytest.raises(ValueError):
            LaplaceNoise.calibrated(sensitivity=1.0, epsilon=0.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            LaplaceNoise(scale=0.0)

    def test_sample_reproducible_with_seed(self):
        noise = LaplaceNoise(scale=1.0)
        a = noise.sample(size=5, rng=42)
        b = noise.sample(size=5, rng=42)
        np.testing.assert_allclose(a, b)

    def test_sample_scalar_when_size_none(self):
        value = LaplaceNoise(scale=1.0).sample(rng=0)
        assert np.isscalar(value) or np.asarray(value).shape == ()

    def test_sample_empirical_moments(self):
        noise = LaplaceNoise(scale=2.0)
        samples = noise.sample(size=200_000, rng=1)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        assert np.var(samples) == pytest.approx(noise.variance, rel=0.05)

    def test_log_density_ratio_bounded_by_alignment_cost(self):
        noise = LaplaceNoise(scale=1.5)
        x, y = 3.7, -2.1
        ratio = float(noise.log_density_ratio(x, y))
        assert ratio <= abs(x - y) / noise.alignment_scale + 1e-12

    def test_density_matches_pdf_helper(self):
        noise = LaplaceNoise(scale=2.5)
        xs = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(noise.density(xs), laplace_pdf(xs, scale=2.5))

    def test_tail_probability(self):
        noise = LaplaceNoise(scale=1.0)
        assert noise.tail_probability(0.0) == pytest.approx(1.0)
        samples = np.abs(noise.sample(size=100_000, rng=3))
        empirical = np.mean(samples >= 2.0)
        assert empirical == pytest.approx(noise.tail_probability(2.0), abs=0.01)

    def test_tail_probability_rejects_negative(self):
        with pytest.raises(ValueError):
            LaplaceNoise(scale=1.0).tail_probability(-0.5)

    def test_quantile_cdf_round_trip(self):
        noise = LaplaceNoise(scale=0.7)
        assert noise.cdf(noise.quantile(0.9)) == pytest.approx(0.9)


class TestSampleBatch:
    def test_stream_preserving_mode_matches_sequential_draws(self):
        noise = LaplaceNoise(scale=2.0)
        matrix = noise.sample_batch((5, 40), rng=9)
        loop_rng = np.random.default_rng(9)
        rows = [noise.sample(size=40, rng=loop_rng) for _ in range(5)]
        np.testing.assert_array_equal(matrix, np.asarray(rows))

    def test_fast_mode_has_correct_distribution(self):
        noise = LaplaceNoise(scale=2.0)
        samples = noise.sample_batch((200, 1_000), rng=1, fast=True)
        assert samples.shape == (200, 1_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        assert np.var(samples) == pytest.approx(noise.variance, rel=0.05)
        # Tail heaviness distinguishes Laplace from e.g. a Gaussian fit.
        assert np.mean(np.abs(samples) >= 2.0 * noise.scale) == pytest.approx(
            noise.tail_probability(2.0 * noise.scale), abs=0.01
        )

    def test_fast_mode_counts_draws_through_random_source(self):
        from repro.primitives.rng import RandomSource

        source = RandomSource(0)
        LaplaceNoise(scale=1.0).sample_batch((6, 8), rng=source, fast=True)
        assert source.draws == 48

    def test_base_class_default_reshapes_and_counts(self):
        from repro.primitives.geometric import GeometricNoise
        from repro.primitives.rng import RandomSource

        noise = GeometricNoise(epsilon=1.0)
        matrix = noise.sample_batch((3, 11), rng=4)
        assert matrix.shape == (3, 11)
        source = RandomSource(4)
        noise.sample_batch((3, 11), rng=source)
        assert source.draws == 33
