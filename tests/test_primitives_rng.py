"""Unit tests for the RNG plumbing."""

import numpy as np
import pytest

from repro.primitives.rng import RandomSource, ensure_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(3).uniform() == ensure_rng(3).uniform()

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_random_source_unwrapped(self):
        source = RandomSource(5)
        assert ensure_rng(source) is source.generator

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestRandomSource:
    def test_counts_scalar_draws(self):
        source = RandomSource(0)
        source.uniform()
        source.laplace()
        assert source.draws == 2

    def test_counts_vector_draws(self):
        source = RandomSource(0)
        source.uniform(size=10)
        source.exponential(size=5)
        assert source.draws == 15

    def test_counts_geometric_and_integers_and_choice(self):
        source = RandomSource(0)
        source.geometric(0.5, size=4)
        source.integers(0, 10, size=3)
        source.choice([1, 2, 3])
        assert source.draws == 8

    def test_counts_matrix_draws_per_scalar(self):
        """A (B, n) batched draw consumes B * n variates, not one."""
        source = RandomSource(0)
        source.laplace(size=(4, 10))
        assert source.draws == 40
        source.uniform(size=(2, 3, 5))
        assert source.draws == 70

    def test_sample_batch_counts_and_matches_stream(self):
        source = RandomSource(11)
        matrix = source.sample_batch(2.0, (3, 7))
        assert matrix.shape == (3, 7)
        assert source.draws == 21
        # Row-major fill: same stream as sequential per-trial draws.
        loop = RandomSource(11)
        rows = [loop.laplace(0.0, 2.0, size=7) for _ in range(3)]
        np.testing.assert_array_equal(matrix, np.asarray(rows))

    def test_spawn_gives_independent_child(self):
        parent = RandomSource(1)
        child = parent.spawn()
        assert isinstance(child, RandomSource)
        assert child is not parent
        assert child.draws == 0

    def test_deterministic_given_seed(self):
        a = RandomSource(9).laplace(size=3)
        b = RandomSource(9).laplace(size=3)
        np.testing.assert_allclose(a, b)
