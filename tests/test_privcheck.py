"""Tests for the static randomness-alignment verifier (:mod:`repro.privcheck`).

Covers the IR compilers (structure only -- the analysis never reads query
values), the path-enumeration + template-synthesis pipeline on all nine
catalogued mechanisms, the parametrized agreement suite against the
documented broken/correct statuses in ``svt_variants.py``, cross-validation
against the *dynamic* checkers (``AlignmentChecker`` must agree on correct
mechanisms, ``EmpiricalDPVerifier`` on broken ones), and the
``verify-privacy`` CLI verb's exit codes (0 all-expected / 2 on any
disagreement).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.alignment.checker import AlignmentChecker
from repro.alignment.verifier import EmpiricalDPVerifier
from repro.api.specs import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    NoisyTopKSpec,
    SparseVectorSpec,
    SvtVariantSpec,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.mechanisms.svt_variants import SVT_VARIANT_CATALOGUE
from repro.privcheck import (
    CatalogueEntry,
    CompileError,
    NoiseSite,
    PrivacyVerdictError,
    ReleaseKind,
    SelectKProgram,
    StreamProgram,
    compile_spec,
    default_catalogue,
    render_verdict_table,
    synthesize,
    verify_catalogue,
    verify_spec,
)

QUERIES = (12.0, 9.0, 7.0, 5.0)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# IR compilers
# ---------------------------------------------------------------------------


class TestCompilers:
    def test_top_k_program_shape(self):
        spec = NoisyTopKSpec(queries=QUERIES, epsilon=1.0, k=3, with_gap=True)
        program = compile_spec(spec)
        assert isinstance(program, SelectKProgram)
        assert program.k == 3
        # General (non-monotonic) scale: 2k * s / epsilon.
        assert program.noise_site.scale == pytest.approx(6.0)

    def test_monotonic_halves_top_k_scale(self):
        general = compile_spec(NoisyTopKSpec(queries=QUERIES, epsilon=1.0, k=2))
        mono = compile_spec(
            NoisyTopKSpec(queries=QUERIES, epsilon=1.0, k=2, monotonic=True)
        )
        assert mono.noise_site.scale == pytest.approx(
            general.noise_site.scale / 2.0
        )

    def test_adaptive_has_two_guarded_branches(self):
        spec = AdaptiveSvtSpec(queries=QUERIES, epsilon=1.0, threshold=8.0, k=2)
        program = compile_spec(spec)
        assert isinstance(program, StreamProgram)
        assert [b.name for b in program.branches] == ["top", "middle"]
        assert program.budget_guarded
        top, middle = program.branches
        # Top branch: half the middle budget, hence double the scale,
        # guarded by the sigma margin.
        assert top.charge == pytest.approx(middle.charge / 2.0)
        assert top.site.scale == pytest.approx(2.0 * middle.site.scale)
        assert top.margin > 0.0
        assert middle.margin == 0.0

    def test_svt2_refreshes_threshold_noise(self):
        program = compile_spec(
            SvtVariantSpec(variant=2, queries=QUERIES, epsilon=1.0, k=3)
        )
        assert program.threshold_draws_worst == 3

    def test_svt5_has_no_threshold_noise(self):
        program = compile_spec(
            SvtVariantSpec(variant=5, queries=QUERIES, epsilon=1.0, k=2)
        )
        assert program.threshold_site == NoiseSite("threshold", None)

    def test_svt6_has_no_query_noise(self):
        program = compile_spec(
            SvtVariantSpec(variant=6, queries=QUERIES, epsilon=1.0, k=2)
        )
        (branch,) = program.branches
        assert branch.site.scale is None

    def test_svt3_releases_raw_value(self):
        program = compile_spec(
            SvtVariantSpec(variant=3, queries=QUERIES, epsilon=1.0, k=2)
        )
        assert program.branches[0].release is ReleaseKind.VALUE

    def test_unsupported_spec_kind(self):
        with pytest.raises(CompileError):
            compile_spec(LaplaceSpec(queries=QUERIES, epsilon=1.0))


# ---------------------------------------------------------------------------
# verdicts: the full catalogue
# ---------------------------------------------------------------------------


class TestCatalogueVerdicts:
    def test_all_nine_mechanisms_classified_with_zero_false_verdicts(self):
        results = verify_catalogue()
        assert len(results) == 9
        for result in results:
            assert result.agrees, (
                f"{result.entry.label}: static verdict "
                f"{result.verdict.status} disagrees with documented "
                f"{'correct' if result.entry.expected_private else 'broken'}"
            )

    def test_verified_cost_matches_documented_epsilon(self):
        # Every correct mechanism's certified worst-case alignment cost is
        # exactly its claimed epsilon (the calibrations are tight).
        for result in verify_catalogue():
            if result.entry.expected_private:
                assert result.verdict.cost == pytest.approx(
                    result.verdict.epsilon
                ), result.entry.label
                assert result.verdict.alignment

    def test_refuted_verdicts_carry_a_branch_trace_hint(self):
        for result in verify_catalogue():
            if not result.entry.expected_private:
                assert not result.verdict.verified
                assert result.verdict.trace, result.entry.label
                assert result.verdict.reason, result.entry.label

    @pytest.mark.parametrize("variant", sorted(SVT_VARIANT_CATALOGUE))
    def test_variant_agreement_with_documented_status(self, variant):
        spec = SvtVariantSpec(
            variant=variant, queries=QUERIES, epsilon=1.0, threshold=8.0, k=2
        )
        verdict = verify_spec(spec)
        assert verdict.verified == bool(
            SVT_VARIANT_CATALOGUE[variant].actually_private
        )

    def test_svt3_refuted_by_contradictory_shift(self):
        verdict = verify_spec(
            SvtVariantSpec(variant=3, queries=QUERIES, epsilon=1.0, k=2)
        )
        assert verdict.trace == ("below", "above")
        assert verdict.cost is None

    def test_svt4_refuted_on_cost(self):
        # SVT4's noise is calibrated for one answer; the cheapest alignment
        # costs epsilon/2 (threshold) + k * epsilon (answers).
        k = 2
        verdict = verify_spec(
            SvtVariantSpec(variant=4, queries=QUERIES, epsilon=1.0, k=k)
        )
        assert not verdict.verified
        assert verdict.cost == pytest.approx((1 + 2 * k) / 2.0)

    def test_svt5_refuted_on_the_all_below_path(self):
        verdict = verify_spec(
            SvtVariantSpec(variant=5, queries=QUERIES, epsilon=1.0, k=2)
        )
        assert verdict.trace == ("below",)

    def test_monotonic_correct_mechanisms_still_verify(self):
        # The halved monotonic scales must verify under both one-sided
        # perturbation domains.
        for spec in (
            NoisyTopKSpec(queries=QUERIES, epsilon=1.0, k=3, monotonic=True),
            SparseVectorSpec(
                queries=QUERIES, epsilon=1.0, threshold=8.0, k=2, monotonic=True
            ),
            AdaptiveSvtSpec(
                queries=QUERIES, epsilon=1.0, threshold=8.0, k=2, monotonic=True
            ),
            SvtVariantSpec(
                variant=2, queries=QUERIES, epsilon=1.0, threshold=8.0, k=2,
                monotonic=True,
            ),
        ):
            verdict = verify_spec(spec)
            assert verdict.verified, (spec.kind, verdict.reason)
            assert verdict.cost <= verdict.epsilon + 1e-9

    def test_miscalibrated_program_is_refuted(self):
        # Direct synthesis check: a top-k program whose noise scale is half
        # what Algorithm 1 requires costs 2*epsilon and must be refuted.
        good = compile_spec(NoisyTopKSpec(queries=QUERIES, epsilon=1.0, k=2))
        bad = SelectKProgram(
            name="under-noised-top-k",
            epsilon=good.epsilon,
            sensitivity=good.sensitivity,
            monotonic=good.monotonic,
            k=good.k,
            noise_site=NoiseSite("query", good.noise_site.scale / 2.0),
            with_gap=good.with_gap,
        )
        synthesis = synthesize(bad)
        assert not synthesis.ok
        assert synthesis.cost == pytest.approx(2.0 * good.epsilon)

    def test_render_table_lists_every_mechanism(self):
        results = verify_catalogue()
        table = render_verdict_table(results)
        for result in results:
            assert result.entry.label in table
        assert "DISAGREES" not in table

    def test_static_analysis_ignores_query_values(self):
        # Same structural parameters, different query answers: verdicts are
        # a function of the spec's structure only.
        a = verify_spec(SparseVectorSpec(queries=QUERIES, epsilon=1.0, k=2))
        b = verify_spec(
            SparseVectorSpec(queries=(0.0, -3.0, 100.0), epsilon=1.0, k=2)
        )
        assert a == b


# ---------------------------------------------------------------------------
# cross-validation against the dynamic checkers
# ---------------------------------------------------------------------------


class TestDynamicAgreement:
    def test_alignment_checker_agrees_on_noisy_top_k(self):
        counts = np.array([100.0, 60.0, 40.0, 20.0, 5.0])
        neighbour = counts - np.array([1.0, 1.0, 1.0, 0.0, 0.0])
        spec = NoisyTopKSpec(
            queries=tuple(counts), epsilon=1.0, k=3, monotonic=True
        )
        assert verify_spec(spec).verified
        mech = NoisyTopKWithGap(epsilon=1.0, k=3, monotonic=True)
        report = AlignmentChecker(trials=25, rng=0).check_noisy_top_k(
            mech, counts, neighbour
        )
        assert report.passed, report.failures
        assert report.max_cost <= mech.epsilon + 1e-9

    def test_alignment_checker_agrees_on_adaptive_svt(self):
        counts = np.array([100.0, 60.0, 40.0, 20.0, 5.0])
        neighbour = counts - np.array([1.0, 1.0, 1.0, 0.0, 0.0])
        spec = AdaptiveSvtSpec(
            queries=tuple(counts), epsilon=0.7, threshold=50.0, k=3,
            monotonic=True,
        )
        assert verify_spec(spec).verified
        factory = lambda: AdaptiveSparseVectorWithGap(  # noqa: E731
            epsilon=0.7, threshold=50.0, k=3, monotonic=True
        )
        report = AlignmentChecker(trials=25, rng=1).check_adaptive_svt(
            factory, counts, neighbour
        )
        assert report.passed, report.failures

    def test_empirical_verifier_agrees_on_broken_svt6(self):
        # Same adjacent pair as the svt_variants suite: the static verdict
        # refutes variant 6, and the dynamic verifier sees the unbounded
        # likelihood ratio on an actual run.
        epsilon = 0.5
        spec = SvtVariantSpec(
            variant=6, queries=(10.0, 9.7), epsilon=epsilon, threshold=9.5, k=2
        )
        assert not verify_spec(spec).verified
        counts = np.array([10.0, 9.7])
        neighbour = np.array([9.0, 9.7])

        def runner(values):
            return lambda g: SVT_VARIANT_CATALOGUE[6](
                epsilon=epsilon, threshold=9.5, k=2
            ).run(values, rng=g)

        report = EmpiricalDPVerifier(
            epsilon=epsilon, trials=6000, slack=1.3, min_count=10
        ).check(
            run_on_d=runner(counts),
            run_on_d_prime=runner(neighbour),
            event=lambda result: tuple(result.above_indices),
            rng=2,
        )
        assert not report.passed


# ---------------------------------------------------------------------------
# CLI: verify-privacy exit codes
# ---------------------------------------------------------------------------


class TestVerifyPrivacyCli:
    def test_exit_zero_and_table_when_all_expected(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "verify-privacy"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert "svt-variant-6" in proc.stdout
        assert "REFUTED" in proc.stdout
        assert "0 disagreement(s)" in proc.stdout

    def _main_with_catalogue(self, monkeypatch, entries):
        import repro.privcheck.verdicts as verdicts_module
        from repro.evaluation.cli import main

        monkeypatch.setattr(
            verdicts_module, "default_catalogue", lambda: tuple(entries)
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["verify-privacy"])
        return excinfo.value.code

    def test_exit_two_on_unexpected_pass(self, monkeypatch, capsys):
        # A deliberately broken variant documented as correct: the static
        # refutation now *disagrees* and must fail the run.
        entries = [
            CatalogueEntry(
                "svt-variant-3",
                SvtVariantSpec(variant=3, queries=QUERIES, epsilon=1.0, k=2),
                expected_private=True,
            )
        ]
        assert self._main_with_catalogue(monkeypatch, entries) == 2
        assert "DISAGREES" in capsys.readouterr().out

    def test_exit_two_on_unexpected_refutation(self, monkeypatch, capsys):
        # A correct mechanism documented as broken: the verified alignment
        # disagrees with the expectation and must fail the run too.
        entries = [
            CatalogueEntry(
                "sparse-vector-with-gap",
                SparseVectorSpec(queries=QUERIES, epsilon=1.0, k=2),
                expected_private=False,
            )
        ]
        assert self._main_with_catalogue(monkeypatch, entries) == 2

    def test_verdict_error_is_raised_by_library_entrypoint(self):
        # The CLI's recoverable path is PrivacyVerdictError; make sure the
        # library raises it (and not something the CLI would traceback on).
        from repro.evaluation.cli import _run_verify_privacy

        class _Args:
            pass

        import io

        import repro.privcheck.verdicts as verdicts_module

        flipped = [
            CatalogueEntry(
                "svt-variant-5",
                SvtVariantSpec(variant=5, queries=QUERIES, epsilon=1.0, k=2),
                expected_private=True,
            )
        ]
        original = verdicts_module.default_catalogue
        verdicts_module.default_catalogue = lambda: tuple(flipped)
        try:
            with pytest.raises(PrivacyVerdictError):
                _run_verify_privacy(_Args(), io.StringIO())
        finally:
            verdicts_module.default_catalogue = original

    def test_default_catalogue_expectations_track_documentation(self):
        # The catalogue's expected statuses are read from svt_variants.py,
        # never hard-coded: flipping a flag there must flip the expectation.
        by_label = {entry.label: entry for entry in default_catalogue()}
        for variant, cls in SVT_VARIANT_CATALOGUE.items():
            assert (
                by_label[f"svt-variant-{variant}"].expected_private
                == cls.actually_private
            )
