"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting.budget import BudgetOdometer, PrivacyBudget
from repro.api import (
    AdaptiveSvtSpec,
    LaplaceSpec,
    NoisyTopKSpec,
    SelectMeasureSpec,
    SparseVectorSpec,
    SvtVariantSpec,
    spec_from_dict,
    spec_from_json,
)
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.dispatch import spec_hash
from repro.mechanisms.sparse_vector import SparseVector, svt_budget_allocation
from repro.postprocess.blue import blue_matrices, blue_top_k_estimate, blue_variance_ratio
from repro.postprocess.confidence import laplace_difference_tail
from repro.postprocess.theory import svt_expected_improvement, top_k_expected_improvement


# ----------------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
query_vectors = st.lists(finite_floats, min_size=3, max_size=30)
epsilons = st.floats(min_value=0.01, max_value=5.0)
ks = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

# Ingredients of random *valid* mechanism specs (validate() must accept every
# drawn spec, so ranges mirror the validators' constraints).
spec_epsilons = st.floats(min_value=0.01, max_value=5.0, allow_subnormal=False)
sensitivities = st.floats(min_value=0.01, max_value=10.0, allow_subnormal=False)
thresholds = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
thetas = st.one_of(st.none(), st.floats(min_value=0.01, max_value=0.99))


@st.composite
def noisy_top_k_specs(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    with_gap = draw(st.booleans())
    need = k + 1 if with_gap else k
    queries = draw(st.lists(finite_floats, min_size=need, max_size=need + 8))
    return NoisyTopKSpec(
        queries=queries,
        epsilon=draw(spec_epsilons),
        k=k,
        monotonic=draw(st.booleans()),
        with_gap=with_gap,
        sensitivity=draw(sensitivities),
    )


@st.composite
def sparse_vector_specs(draw):
    return SparseVectorSpec(
        queries=draw(query_vectors),
        epsilon=draw(spec_epsilons),
        threshold=draw(thresholds),
        k=draw(st.integers(min_value=1, max_value=5)),
        monotonic=draw(st.booleans()),
        with_gap=draw(st.booleans()),
        theta=draw(thetas),
        sensitivity=draw(sensitivities),
    )


@st.composite
def adaptive_svt_specs(draw):
    return AdaptiveSvtSpec(
        queries=draw(query_vectors),
        epsilon=draw(spec_epsilons),
        threshold=draw(thresholds),
        k=draw(st.integers(min_value=1, max_value=5)),
        monotonic=draw(st.booleans()),
        theta=draw(thetas),
        sigma_multiplier=draw(st.floats(min_value=0.1, max_value=5.0)),
        sensitivity=draw(sensitivities),
        max_answers=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=5))),
    )


@st.composite
def select_measure_specs(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    mechanism = draw(st.sampled_from(SelectMeasureSpec.MECHANISMS))
    queries = draw(st.lists(finite_floats, min_size=k + 1, max_size=k + 8))
    return SelectMeasureSpec(
        queries=queries,
        epsilon=draw(spec_epsilons),
        k=k,
        mechanism=mechanism,
        threshold=draw(thresholds) if mechanism == "svt" else None,
        monotonic=draw(st.booleans()),
        adaptive=draw(st.booleans()) if mechanism == "svt" else False,
    )


@st.composite
def laplace_specs(draw):
    return LaplaceSpec(
        queries=draw(query_vectors),
        epsilon=draw(spec_epsilons),
        l1_sensitivity=draw(st.one_of(st.none(), sensitivities)),
    )


@st.composite
def svt_variant_specs(draw):
    variant = draw(st.integers(min_value=1, max_value=6))
    return SvtVariantSpec(
        queries=draw(query_vectors),
        epsilon=draw(spec_epsilons),
        variant=variant,
        threshold=draw(thresholds),
        k=draw(st.integers(min_value=1, max_value=5)),
        monotonic=draw(st.booleans()) if variant <= 2 else False,
        sensitivity=draw(sensitivities),
    )


mechanism_specs = st.one_of(
    noisy_top_k_specs(),
    sparse_vector_specs(),
    adaptive_svt_specs(),
    select_measure_specs(),
    laplace_specs(),
    svt_variant_specs(),
)


# ----------------------------------------------------------------------------
# Noisy-Top-K-with-Gap invariants
# ----------------------------------------------------------------------------


class TestTopKProperties:
    @given(values=query_vectors, epsilon=epsilons, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_selection_invariants(self, values, epsilon, k, seed):
        values = np.asarray(values)
        if values.size < k + 1:
            return
        mech = NoisyTopKWithGap(epsilon=epsilon, k=k, monotonic=True)
        result = mech.select(values, rng=seed)
        # Exactly k distinct valid indexes are returned.
        assert len(result.indices) == k
        assert len(set(result.indices)) == k
        assert all(0 <= i < values.size for i in result.indices)
        # Exactly k gaps, all non-negative and finite.
        assert result.gaps.shape == (k,)
        assert np.all(result.gaps >= 0)
        assert np.all(np.isfinite(result.gaps))

    @given(values=query_vectors, epsilon=epsilons, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_noisy_values_reconstruct_ordering(self, values, epsilon, k, seed):
        # The noisy value of the i-th selected query equals the noisy value of
        # the (i+1)-th plus the released gap, hence noisy values of selected
        # queries are non-increasing.
        values = np.asarray(values)
        if values.size < k + 1:
            return
        mech = NoisyTopKWithGap(epsilon=epsilon, k=k, monotonic=True)
        result = mech.select(values, rng=seed)
        noise = result.noise_trace.values
        noisy = values + noise
        selected_noisy = noisy[result.indices]
        assert np.all(np.diff(selected_noisy) <= 1e-9)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_gap_free_and_with_gap_agree_on_same_noise(self, seed):
        from repro.mechanisms.noisy_max import NoisyTopK

        rng = np.random.default_rng(seed)
        values = rng.uniform(0, 100, 12)
        noise = rng.laplace(0, 5, 12)
        with_gap = NoisyTopKWithGap(epsilon=1.0, k=3).select(values, noise=noise)
        gap_free = NoisyTopK(epsilon=1.0, k=3).select(values, noise=noise)
        assert with_gap.indices == gap_free.indices


# ----------------------------------------------------------------------------
# Sparse Vector invariants
# ----------------------------------------------------------------------------


class TestSvtProperties:
    @given(values=query_vectors, epsilon=epsilons, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_standard_svt_never_exceeds_k_or_budget(self, values, epsilon, k, seed):
        values = np.asarray(values)
        threshold = float(np.median(values))
        mech = SparseVector(epsilon=epsilon, threshold=threshold, k=k, monotonic=True)
        result = mech.run(values, rng=seed)
        assert result.num_answered <= k
        assert result.metadata.epsilon_spent <= epsilon + 1e-9
        # Outcomes are a prefix of the stream in order.
        assert [o.index for o in result.outcomes] == list(range(result.num_processed))

    @given(values=query_vectors, epsilon=epsilons, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_adaptive_svt_budget_and_gap_invariants(self, values, epsilon, k, seed):
        values = np.asarray(values)
        threshold = float(np.median(values))
        mech = AdaptiveSparseVectorWithGap(
            epsilon=epsilon, threshold=threshold, k=k, monotonic=True
        )
        result = mech.run(values, rng=seed)
        assert result.metadata.epsilon_spent <= epsilon + 1e-9
        for outcome in result.outcomes:
            if outcome.above:
                assert outcome.gap is not None and outcome.gap >= 0
                assert outcome.budget_used > 0
            else:
                assert outcome.gap is None
                assert outcome.budget_used == 0.0

    @given(epsilon=epsilons, k=ks, theta=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_budget_allocation_partitions_epsilon(self, epsilon, k, theta):
        eps_threshold, eps_queries = svt_budget_allocation(epsilon, k, True, theta)
        assert eps_threshold > 0 and eps_queries > 0
        assert eps_threshold + eps_queries == pytest.approx(epsilon)


# ----------------------------------------------------------------------------
# Post-processing invariants
# ----------------------------------------------------------------------------


class TestPostprocessProperties:
    @given(
        k=st.integers(min_value=2, max_value=15),
        lam=st.floats(min_value=0.1, max_value=10.0),
        seed=seeds,
    )
    @settings(max_examples=80, deadline=None)
    def test_blue_streaming_matches_matrix_form(self, k, lam, seed):
        rng = np.random.default_rng(seed)
        alpha = rng.uniform(-100, 100, k)
        gaps = rng.uniform(0, 50, k - 1)
        x, y = blue_matrices(k, lam)
        expected = (x @ alpha + y @ gaps) / ((1 + lam) * k)
        np.testing.assert_allclose(blue_top_k_estimate(alpha, gaps, lam), expected)

    @given(
        k=st.integers(min_value=1, max_value=20),
        lam=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_blue_unbiased_on_noiseless_inputs(self, k, lam):
        truths = np.linspace(100, 100 - 5 * (k - 1), k)
        gaps = -np.diff(truths) if k > 1 else np.asarray([])
        np.testing.assert_allclose(
            blue_top_k_estimate(truths, gaps, lam=lam), truths, atol=1e-8
        )

    @given(
        k=st.integers(min_value=1, max_value=100),
        lam=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_variance_ratio_bounds(self, k, lam):
        ratio = blue_variance_ratio(k, lam)
        assert 0.0 < ratio <= 1.0

    @given(k=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_theory_curves_within_limits(self, k):
        assert 0.0 <= top_k_expected_improvement(k) < 0.5
        assert 0.0 <= svt_expected_improvement(k, True) < 0.5
        assert 0.0 <= svt_expected_improvement(k, False) < 0.2

    @given(
        t=st.floats(min_value=0.0, max_value=50.0),
        eps0=st.floats(min_value=0.05, max_value=5.0),
        eps_star=st.floats(min_value=0.05, max_value=5.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_laplace_difference_tail_is_probability(self, t, eps0, eps_star):
        value = float(laplace_difference_tail(t, eps0, eps_star))
        assert 0.5 - 1e-9 <= value <= 1.0 + 1e-9


# ----------------------------------------------------------------------------
# Accounting invariants
# ----------------------------------------------------------------------------


class TestAccountingProperties:
    @given(
        epsilon=st.floats(min_value=0.01, max_value=10.0),
        charges=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_odometer_conservation(self, epsilon, charges):
        odometer = BudgetOdometer(epsilon)
        applied = 0.0
        for charge in charges:
            if odometer.can_charge(charge):
                odometer.charge(charge)
                applied += charge
        assert odometer.spent == pytest.approx(applied)
        assert odometer.spent <= epsilon + 1e-9
        assert odometer.remaining == pytest.approx(max(0.0, epsilon - applied), abs=1e-9)

    @given(
        epsilon=st.floats(min_value=0.01, max_value=10.0),
        k=st.integers(min_value=1, max_value=50),
        monotonic=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_svt_allocation_helper_consistent(self, epsilon, k, monotonic):
        threshold, queries = PrivacyBudget(epsilon).svt_allocation(k, monotonic)
        assert threshold + queries == pytest.approx(epsilon)
        assert 0 < threshold < epsilon


# ----------------------------------------------------------------------------
# Mechanism-spec serialization / content-address invariants
# ----------------------------------------------------------------------------


class TestSpecSerializationProperties:
    @given(spec=mechanism_specs)
    @settings(max_examples=120, deadline=None)
    def test_dict_round_trip_is_identity(self, spec):
        restored = spec_from_dict(spec.to_dict())
        assert type(restored) is type(spec)
        assert restored == spec

    @given(spec=mechanism_specs)
    @settings(max_examples=120, deadline=None)
    def test_json_round_trip_is_identity(self, spec):
        # Stronger than the dict round-trip: every float must survive its
        # textual JSON form exactly (repr round-trips in Python).
        assert spec_from_json(spec.to_json()) == spec

    @given(spec=mechanism_specs)
    @settings(max_examples=120, deadline=None)
    def test_every_drawn_spec_validates(self, spec):
        assert spec.validate() is spec

    @given(spec=mechanism_specs)
    @settings(max_examples=120, deadline=None)
    def test_hash_is_invariant_under_round_trip_and_key_order(self, spec):
        digest = spec_hash(spec)
        assert spec_hash(spec_from_dict(spec.to_dict())) == digest
        reordered = dict(reversed(list(spec.to_dict().items())))
        assert spec_hash(spec_from_dict(reordered)) == digest

    @given(first=mechanism_specs, second=mechanism_specs)
    @settings(max_examples=120, deadline=None)
    def test_hash_equality_matches_spec_equality(self, first, second):
        # Content addressing must agree with value semantics in both
        # directions: equal specs share a hash, unequal specs (including the
        # -0.0 == 0.0 edge) never collide in practice.
        assert (spec_hash(first) == spec_hash(second)) == (first == second)
