"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.selection import probability_correct_max
from repro.datasets.transactions import TransactionDatabase
from repro.evaluation.plots import bar_chart, line_plot
from repro.evaluation.reporting import ExperimentRecord, compare_series
from repro.mechanisms.svt_variants import SvtVariant2
from repro.postprocess.consistency import (
    isotonic_nonincreasing,
    ordering_violations,
)

finite_values = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_values, min_size=1, max_size=40)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestIsotonicProperties:
    @given(values=value_lists)
    @settings(max_examples=150, deadline=None)
    def test_projection_is_nonincreasing_and_idempotent(self, values):
        projected = isotonic_nonincreasing(values)
        assert projected.shape == (len(values),)
        assert np.all(np.diff(projected) <= 1e-9)
        assert ordering_violations(projected) == 0
        np.testing.assert_allclose(
            isotonic_nonincreasing(projected), projected, atol=1e-9
        )

    @given(values=value_lists)
    @settings(max_examples=150, deadline=None)
    def test_projection_preserves_total(self, values):
        projected = isotonic_nonincreasing(values)
        assert float(np.sum(projected)) == pytest.approx(float(np.sum(values)), abs=1e-6 * max(1.0, float(np.sum(np.abs(values)))))

    @given(values=value_lists)
    @settings(max_examples=100, deadline=None)
    def test_projection_never_expands_range(self, values):
        projected = isotonic_nonincreasing(values)
        assert projected.max() <= max(values) + 1e-9
        assert projected.min() >= min(values) - 1e-9

    @given(
        values=st.lists(finite_values, min_size=2, max_size=20),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_weighted_projection_monotone(self, values, weights):
        size = min(len(values), len(weights))
        projected = isotonic_nonincreasing(values[:size], weights[:size])
        assert np.all(np.diff(projected) <= 1e-9)


class TestTransactionDatabaseProperties:
    @given(
        transactions=st.lists(
            st.sets(st.integers(min_value=0, max_value=30), max_size=8),
            min_size=1,
            max_size=40,
        ),
        index=st.integers(min_value=0, max_value=39),
    )
    @settings(max_examples=100, deadline=None)
    def test_removing_a_record_changes_counts_by_at_most_one(self, transactions, index):
        database = TransactionDatabase(transactions)
        index = index % len(database)
        neighbour = database.remove_record(index)
        items = database.unique_items()
        diff = database.item_counts(items) - neighbour.item_counts(items)
        assert np.all(diff >= 0)
        assert np.all(diff <= 1)
        # Exactly the items of the removed transaction changed.
        assert int(diff.sum()) == len(database[index])

    @given(
        transactions=st.lists(
            st.sets(st.integers(min_value=0, max_value=30), max_size=8),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_histogram_totals_match_transaction_lengths(self, transactions):
        database = TransactionDatabase(transactions)
        histogram = database.item_histogram()
        assert sum(histogram.values()) == sum(len(t) for t in database)


class TestSelectionProbabilityProperties:
    @given(
        values=st.lists(finite_values, min_size=2, max_size=10),
        scale=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_is_a_probability_and_beats_uniform_floor(self, values, scale):
        p = probability_correct_max(values, scale, grid_points=801)
        assert 0.0 <= p <= 1.0 + 1e-9
        # The true maximiser is always at least as likely as any fixed other
        # index, so its win probability is at least 1/n (up to grid error).
        assert p >= 1.0 / len(values) - 0.02


class TestSvtVariant2Properties:
    @given(
        values=st.lists(finite_values, min_size=1, max_size=30),
        epsilon=st.floats(min_value=0.05, max_value=3.0),
        k=st.integers(min_value=1, max_value=5),
        seed=seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_and_answer_bounds(self, values, epsilon, k, seed):
        mech = SvtVariant2(
            epsilon=epsilon,
            threshold=float(np.median(values)),
            k=k,
            monotonic=True,
        )
        result = mech.run(values, rng=seed)
        assert result.num_answered <= k
        assert result.metadata.epsilon_spent <= epsilon + 1e-9


class TestReportingProperties:
    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {
                    "k": st.integers(min_value=1, max_value=100),
                    "value": st.floats(
                        min_value=-1e6, max_value=1e6, allow_nan=False
                    ),
                }
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda row: row["k"],
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_record_dict_round_trip(self, rows):
        record = ExperimentRecord(name="prop", parameters={"trials": 10})
        record.add_series("series", rows)
        rebuilt = ExperimentRecord.from_dict(record.to_dict())
        assert rebuilt.series["series"] == record.series["series"]
        assert compare_series(rows, rows, "k", "value", tolerance=0.0) == []


class TestPlotProperties:
    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {
                    "x": st.integers(min_value=0, max_value=1000),
                    "y": st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                }
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_line_plot_always_renders(self, rows):
        plot = line_plot(rows, "x", ["y"], width=40, height=10)
        assert "legend" in plot
        canvas_lines = [line for line in plot.splitlines() if line.startswith("|")]
        assert len(canvas_lines) == 10

    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {
                    "label": st.text(
                        alphabet=st.characters(
                            whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
                        ),
                        min_size=1,
                        max_size=8,
                    ),
                    "value": st.floats(min_value=0, max_value=1e3, allow_nan=False),
                }
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bar_chart_always_renders(self, rows):
        chart = bar_chart(rows, "label", "value", width=30)
        assert len(chart.splitlines()) == len(rows)
