"""Unit tests for the query and workload model."""

import numpy as np
import pytest

from repro.queries.query import (
    CountingQuery,
    Query,
    QueryResult,
    evaluate_all,
    infer_monotonicity,
)
from repro.queries.sensitivity import (
    SensitivityError,
    l1_sensitivity_upper_bound,
    monotonicity_violations,
    per_query_sensitivity_bound,
    validate_sensitivity,
)
from repro.queries.workload import QueryWorkload, item_count_workload


class TestQuery:
    def test_call_evaluates_function(self):
        query = Query(fn=lambda db: len(db), sensitivity=1.0)
        assert query([1, 2, 3]) == 3.0

    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(ValueError):
            Query(fn=len, sensitivity=0.0)

    def test_default_not_monotonic(self):
        assert Query(fn=len).monotonic is False


class TestCountingQuery:
    def test_counts_matching_records(self):
        query = CountingQuery(lambda record: record > 5)
        assert query([1, 6, 7, 2]) == 2.0

    def test_is_monotonic_and_sensitivity_one(self):
        query = CountingQuery(lambda record: True)
        assert query.monotonic is True
        assert query.sensitivity == 1.0

    def test_changes_by_at_most_one_when_record_added(self):
        query = CountingQuery(lambda record: record % 2 == 0)
        database = [1, 2, 3, 4]
        assert abs(query(database + [6]) - query(database)) <= 1.0


class TestInferMonotonicity:
    def test_all_counting_queries_monotonic(self):
        queries = [CountingQuery(lambda r: True) for _ in range(3)]
        assert infer_monotonicity(queries) is True

    def test_one_general_query_breaks_monotonicity(self):
        queries = [CountingQuery(lambda r: True), Query(fn=len)]
        assert infer_monotonicity(queries) is False

    def test_empty_list_is_monotonic(self):
        assert infer_monotonicity([]) is True


class TestQueryResult:
    def test_absolute_error(self):
        result = QueryResult(name="q", true_value=10.0, released_value=12.5)
        assert result.absolute_error() == pytest.approx(2.5)

    def test_absolute_error_none_without_release(self):
        assert QueryResult(name="q", true_value=10.0).absolute_error() is None


class TestEvaluateAll:
    def test_returns_all_answers(self):
        queries = [Query(fn=lambda db: sum(db)), Query(fn=lambda db: max(db))]
        assert evaluate_all(queries, [1, 2, 3]) == [6.0, 3.0]


class TestQueryWorkload:
    def _workload(self):
        return QueryWorkload(
            [CountingQuery(lambda r, i=i: i in r, name=f"q{i}") for i in range(4)]
        )

    def test_len_iter_getitem(self):
        workload = self._workload()
        assert len(workload) == 4
        assert workload[0].name == "q0"
        assert [q.name for q in workload] == ["q0", "q1", "q2", "q3"]

    def test_monotonic_detection(self):
        assert self._workload().monotonic is True

    def test_requires_at_least_one_query(self):
        with pytest.raises(ValueError):
            QueryWorkload([])

    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(ValueError):
            QueryWorkload([CountingQuery(lambda r: True)], sensitivity=0.0)

    def test_evaluate_returns_vector(self):
        database = [{0, 1}, {1, 2}, {2, 3}]
        answers = self._workload().evaluate(database)
        np.testing.assert_allclose(answers, [1.0, 2.0, 2.0, 1.0])

    def test_subset_preserves_order_and_sensitivity(self):
        workload = self._workload()
        sub = workload.subset([2, 0])
        assert [q.name for q in sub] == ["q2", "q0"]
        assert sub.sensitivity == workload.sensitivity

    def test_names(self):
        assert self._workload().names() == ["q0", "q1", "q2", "q3"]


class TestItemCountWorkload:
    def test_counts_items_in_transactions(self):
        workload = item_count_workload(["a", "b"])
        database = [{"a"}, {"a", "b"}, {"b"}, {"c"}]
        np.testing.assert_allclose(workload.evaluate(database), [2.0, 2.0])

    def test_late_binding_avoided(self):
        workload = item_count_workload([0, 1, 2])
        database = [{0}, {1}, {2}]
        np.testing.assert_allclose(workload.evaluate(database), [1.0, 1.0, 1.0])

    def test_workload_is_monotonic_sensitivity_one(self):
        workload = item_count_workload(["x"])
        assert workload.monotonic is True
        assert workload.sensitivity == 1.0


class TestSensitivityHelpers:
    @staticmethod
    def _count_queries(database):
        return [
            sum(1 for r in database if "a" in r),
            sum(1 for r in database if "b" in r),
        ]

    def test_l1_bound_counts_both_coordinates(self):
        d = [{"a", "b"}, {"a"}]
        d_prime = [{"a"}]
        bound = l1_sensitivity_upper_bound(self._count_queries, [(d, d_prime)])
        assert bound == pytest.approx(2.0)

    def test_per_query_bound_is_max_coordinate_change(self):
        d = [{"a", "b"}, {"a"}]
        d_prime = [{"a"}]
        bound = per_query_sensitivity_bound(self._count_queries, [(d, d_prime)])
        assert bound == pytest.approx(1.0)

    def test_validate_accepts_correct_declaration(self):
        d = [{"a"}, {"b"}]
        observed = validate_sensitivity(
            self._count_queries, [(d, d[:1])], declared=1.0, per_query=True
        )
        assert observed <= 1.0

    def test_validate_rejects_underdeclared(self):
        # Removing the {"a", "b"} record changes both counts, so the vector
        # L1 sensitivity is 2 and a declaration of 1 must be rejected.
        d = [{"a", "b"}, {"a"}]
        d_prime = [{"a"}]
        with pytest.raises(SensitivityError):
            validate_sensitivity(
                self._count_queries, [(d, d_prime)], declared=1.0, per_query=False
            )

    def test_validate_rejects_nonpositive_declaration(self):
        with pytest.raises(ValueError):
            validate_sensitivity(self._count_queries, [], declared=0.0)

    def test_mismatched_lengths_raise(self):
        def bad(db):
            return [0.0] * len(db)

        with pytest.raises(SensitivityError):
            l1_sensitivity_upper_bound(bad, [([1, 2], [1])])

    def test_monotonicity_violations_counting_queries(self):
        d = [{"a"}, {"b"}]
        d_prime = [{"a"}]
        assert monotonicity_violations(self._count_queries, [(d, d_prime)]) == 0

    def test_monotonicity_violation_detected(self):
        def opposing(db):
            total = sum(db)
            return [total, -total]

        assert monotonicity_violations(opposing, [([1, 2], [1])]) == 1
