"""End-to-end tests of the job-queue service layer (:mod:`repro.service`).

The load-bearing property is the service determinism contract: a job
submitted through the queue and executed by any number of concurrent
workers produces a :class:`Result` **bit-identical** to
``run(spec, trials=B, rng=seed, shards=N, chunk_trials=C)``.  Around it,
the operational guarantees: atomic claims (no task executes under two
live leases), crash-retry via lease expiry, dead-lettering after
``max_attempts``, a shared content-addressed disk cache between workers,
and clean client/CLI error surfaces.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.api import (
    AdaptiveSvtSpec,
    NoisyTopKSpec,
    SparseVectorSpec,
    SvtVariantSpec,
    UnsupportedEngineError,
    run,
    submit,
)
from repro.dispatch import DiskResultCache, MemoryResultCache
from repro.service import (
    Broker,
    FileJobQueue,
    JobClient,
    JobFailedError,
    JobNotFoundError,
    MemoryJobQueue,
    QueueError,
    ServiceError,
    Worker,
    run_workers,
    task_key,
)

NUM_QUERIES = 40
TRIALS = 24
CHUNK = 5  # -> tasks of 5,5,5,5,4 trials: remainder + ragged widths

_ARRAY_FIELDS = (
    "epsilon_consumed",
    "indices",
    "gaps",
    "estimates",
    "measurements",
    "true_values",
    "mask",
    "above",
    "branches",
    "processed",
)


def assert_results_identical(a, b):
    assert a.mechanism == b.mechanism
    assert a.engine == b.engine
    assert a.trials == b.trials
    assert a.epsilon == b.epsilon
    assert a.monotonic == b.monotonic
    assert a.extra == b.extra
    for name in _ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert (left is None) == (right is None), name
        if left is not None:
            assert left.dtype == right.dtype, name
            np.testing.assert_array_equal(left, right, err_msg=name)


@pytest.fixture(scope="module")
def queries():
    return np.sort(np.random.default_rng(3).uniform(0.0, 500.0, NUM_QUERIES))[::-1].copy()


@pytest.fixture
def top_k_spec(queries):
    return NoisyTopKSpec(queries=queries, epsilon=1.0, k=3, monotonic=True)


@pytest.fixture
def adaptive_spec(queries):
    return AdaptiveSvtSpec(
        queries=queries,
        epsilon=1.0,
        threshold=float(np.median(queries)),
        k=3,
        monotonic=True,
    )


# ---------------------------------------------------------------------------
# queue semantics (both backends)
# ---------------------------------------------------------------------------


@pytest.fixture(params=["memory", "file"])
def make_queue(request, tmp_path):
    def factory(**kwargs):
        if request.param == "memory":
            return MemoryJobQueue(**kwargs)
        return FileJobQueue(tmp_path / "queue", **kwargs)

    return factory


class TestQueueSemantics:
    def test_put_claim_ack_lifecycle(self, make_queue):
        queue = make_queue()
        task_id = queue.put("payload-a")
        assert queue.counts() == {"pending": 1, "claimed": 0, "failed": 0}
        claimed = queue.claim(worker_id="w0")
        assert claimed.task_id == task_id
        assert claimed.payload == "payload-a"
        assert claimed.attempts == 1
        assert queue.counts() == {"pending": 0, "claimed": 1, "failed": 0}
        assert queue.ack(task_id) is True
        assert queue.counts() == {"pending": 0, "claimed": 0, "failed": 0}
        assert queue.is_idle

    def test_claim_on_empty_queue_returns_none(self, make_queue):
        assert make_queue().claim() is None

    def test_duplicate_task_id_is_rejected(self, make_queue):
        queue = make_queue()
        queue.put("x", task_id="t1")
        with pytest.raises(QueueError):
            queue.put("y", task_id="t1")

    def test_claims_are_exclusive_under_contention(self, make_queue):
        """N racing threads over M tasks: every task claimed exactly once."""
        queue = make_queue()
        total = 20
        for i in range(total):
            queue.put(f"payload-{i}", task_id=f"task-{i:03d}")
        claimed, lock = [], threading.Lock()

        def drain(worker_id):
            while True:
                task = queue.claim(worker_id=worker_id)
                if task is None:
                    return
                with lock:
                    claimed.append(task.task_id)
                queue.ack(task.task_id)

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert sorted(claimed) == [f"task-{i:03d}" for i in range(total)]
        assert len(set(claimed)) == total  # nobody double-claimed
        assert queue.is_idle

    def test_nack_requeues_and_increments_attempts(self, make_queue):
        queue = make_queue(max_attempts=3)
        task_id = queue.put("flaky")
        first = queue.claim()
        assert queue.nack(task_id, error="boom") == "requeued"
        second = queue.claim()
        assert second.task_id == first.task_id
        assert second.attempts == 2

    def test_nack_dead_letters_after_max_attempts(self, make_queue):
        queue = make_queue(max_attempts=2)
        task_id = queue.put("doomed")
        queue.claim()
        assert queue.nack(task_id, error="first failure") == "requeued"
        queue.claim()
        assert queue.nack(task_id, error="second failure") == "failed"
        assert queue.counts() == {"pending": 0, "claimed": 0, "failed": 1}
        assert queue.failed_error(task_id) == "second failure"
        assert queue.claim() is None  # dead-lettered tasks are not claimable

    def test_nack_of_unclaimed_task_is_an_error(self, make_queue):
        queue = make_queue()
        queue.put("x", task_id="t1")
        with pytest.raises(QueueError):
            queue.nack("t1")

    def test_expired_lease_is_requeued_for_another_worker(self, make_queue):
        queue = make_queue(max_attempts=3)
        task_id = queue.put("crashy")
        queue.claim(worker_id="crasher")  # crashes: never acks
        assert queue.requeue_expired(lease_seconds=0.0) == [task_id]
        retry = queue.claim(worker_id="survivor")
        assert retry.task_id == task_id
        assert retry.attempts == 2
        # The crashed worker's late ack is benign, not an error.
        assert queue.ack(task_id) in (True, False)

    def test_fresh_lease_is_not_requeued(self, make_queue):
        queue = make_queue(lease_seconds=300.0)
        queue.put("healthy")
        queue.claim()
        assert queue.requeue_expired() == []
        assert queue.counts()["claimed"] == 1

    def test_stale_ack_and_nack_cannot_revoke_a_live_claim(self, make_queue):
        """The fencing token: a worker whose lease expired mid-execution
        (task since reclaimed at a higher attempt count) must not ack or
        nack the new owner's claim out from under it."""
        queue = make_queue(max_attempts=5)
        queue.put("x", task_id="t")
        first = queue.claim(worker_id="slow")
        queue.requeue_expired(lease_seconds=0.0)
        second = queue.claim(worker_id="fast")
        assert second.attempts == first.attempts + 1
        # The slow worker wakes up and tries to report its stale outcome.
        assert queue.ack("t", token=first.attempts) is False
        with pytest.raises(QueueError, match="stale"):
            queue.nack("t", error="late failure", token=first.attempts)
        assert queue.counts()["claimed"] == 1  # fast's claim is intact
        assert queue.ack("t", token=second.attempts) is True

    def test_repeated_expiry_dead_letters(self, make_queue):
        queue = make_queue(max_attempts=2)
        task_id = queue.put("always-crashes")
        queue.claim()
        queue.requeue_expired(lease_seconds=0.0)
        queue.claim()
        assert queue.requeue_expired(lease_seconds=0.0) == [task_id]
        assert queue.counts() == {"pending": 0, "claimed": 0, "failed": 1}
        assert queue.failed_error(task_id) == "lease expired"

    def test_remove_drops_pending_tasks_only(self, make_queue):
        queue = make_queue()
        queue.put("a", task_id="t1")
        queue.put("b", task_id="t2")
        assert queue.claim().task_id == "t1"  # FIFO in both backends
        assert queue.remove("t2") is True
        assert queue.remove("t1") is False  # claimed, not pending
        assert queue.counts() == {"pending": 0, "claimed": 1, "failed": 0}

    def test_invalid_ids_rejected(self, make_queue):
        queue = make_queue()
        for bad in ("a/b", "a.b", "..", "~x"):
            with pytest.raises(ValueError):
                queue.put("x", task_id=bad)


class TestSameTimestampFifo:
    def test_equal_seq_puts_claim_in_put_order(self, tmp_path, monkeypatch):
        """Regression: ``seq`` is a wall-clock stamp, so two puts inside
        one clock tick got equal seq and FIFO-within-tenant fell back to
        task-id order -- which need not match put order.  The per-process
        put counter (the entry's ``tie``) must break the tie."""
        monkeypatch.setattr(time, "time", lambda: 1234.5)  # one frozen tick
        queue = FileJobQueue(tmp_path / "queue")
        # Reverse-lexicographic ids: id order disagrees with put order.
        for task_id in ("zulu", "mike", "alpha"):
            queue.put(f"payload-{task_id}", task_id=task_id)
        claimed = [queue.claim(worker_id="w0").task_id for _ in range(3)]
        assert claimed == ["zulu", "mike", "alpha"]

    def test_tie_survives_the_pending_file_round_trip(self, tmp_path, monkeypatch):
        """A claimer that never saw the puts (fresh process, cold claim-meta
        cache) must recover the same order from the entries on disk."""
        monkeypatch.setattr(time, "time", lambda: 1234.5)
        producer = FileJobQueue(tmp_path / "queue")
        for task_id in ("zulu", "mike", "alpha"):
            producer.put(f"payload-{task_id}", task_id=task_id)
        consumer = FileJobQueue(tmp_path / "queue")  # cold cache: reads JSON
        claimed = [consumer.claim(worker_id="w1").task_id for _ in range(3)]
        assert claimed == ["zulu", "mike", "alpha"]

    def test_entries_without_tie_still_claim(self, tmp_path, monkeypatch):
        """Entries written before the tie field existed (no ``tie`` key)
        default to 0.0 and sort ahead of same-seq new entries."""
        monkeypatch.setattr(time, "time", lambda: 1234.5)
        queue = FileJobQueue(tmp_path / "queue")
        queue.put("payload-new", task_id="aaa-new")
        old = queue.directory / "pending" / "zzz-old.json"
        old.write_text(
            json.dumps(
                {"payload": "payload-old", "attempts": 0, "priority": 0,
                 "tenant": "default", "seq": 1234.5}
            ),
            encoding="utf-8",
        )
        fresh = FileJobQueue(tmp_path / "queue")
        claimed = [fresh.claim(worker_id="w2").task_id for _ in range(2)]
        assert claimed == ["zzz-old", "aaa-new"]


class TestFileQueueClaimRaces:
    def test_claim_survives_losing_the_entry_to_a_racing_reaper(
        self, tmp_path, monkeypatch
    ):
        """If a reaper requeues a freshly-renamed claim before its metadata
        rewrite lands, the claimer's entry read fails -- that is a lost
        race to skip, never an exception out of claim()."""
        queue = FileJobQueue(tmp_path / "q")
        queue.put("a", task_id="t1")
        queue.put("b", task_id="t2")
        real_read = FileJobQueue._read_entry
        raised = {"count": 0}

        def flaky_read(path):
            if raised["count"] == 0:
                raised["count"] += 1
                raise FileNotFoundError(path)
            return real_read(path)

        monkeypatch.setattr(FileJobQueue, "_read_entry", staticmethod(flaky_read))
        claimed = queue.claim(worker_id="w0")
        assert claimed is not None  # moved on to the next pending task
        assert claimed.task_id == "t2"
        assert raised["count"] == 1


    def test_orphaned_take_from_a_crashed_retirer_is_recovered(self, tmp_path):
        """A worker killed between _take_claim's rename and the
        pending/failed rewrite leaves a .take.* file no glob matches; the
        reaper must restore it or the task is lost forever."""
        import os
        import time

        queue = FileJobQueue(tmp_path / "q", max_attempts=3)
        task_id = queue.put("survivor")
        queue.claim(worker_id="doomed")
        # Simulate the crash window: the retire rename happened, the owner
        # died before writing pending/failed.
        claimed_path = tmp_path / "q" / "claimed" / f"{task_id}.json"
        orphan = claimed_path.with_name(f".take.{claimed_path.name}.deadbeef")
        os.rename(claimed_path, orphan)
        old = time.time() - 3_600.0
        os.utime(orphan, (old, old))
        assert queue.counts() == {"pending": 0, "claimed": 0, "failed": 0}
        moved = queue.requeue_expired(lease_seconds=0.0)
        assert moved == [task_id]  # recovered and requeued in one pass
        retry = queue.claim(worker_id="survivor")
        assert retry is not None and retry.payload == "survivor"

    def test_stale_orphaned_take_is_dropped_when_task_progressed(self, tmp_path):
        import os
        import time

        queue = FileJobQueue(tmp_path / "q")
        task_id = queue.put("x")
        claimed = queue.claim()
        # Fabricate an ancient orphan of an earlier take while the task is
        # legitimately claimed again: the orphan must be dropped, not
        # restored over the live claim.
        claimed_path = tmp_path / "q" / "claimed" / f"{task_id}.json"
        orphan = claimed_path.with_name(f".take.{claimed_path.name}.cafe01")
        orphan.write_text(claimed_path.read_text())
        old = time.time() - 3_600.0
        os.utime(orphan, (old, old))
        queue.requeue_expired(lease_seconds=3_000.0)  # claim itself is fresh
        assert not orphan.exists()
        assert queue.counts()["claimed"] == 1
        assert queue.ack(task_id, token=claimed.attempts) is True


class TestFileQueueDurability:
    def test_queue_state_survives_a_process_restart(self, tmp_path):
        """A fresh FileJobQueue over the same directory sees everything."""
        first = FileJobQueue(tmp_path / "q")
        first.put("payload-a", task_id="t1")
        first.put("payload-b", task_id="t2")
        first.claim()
        reopened = FileJobQueue(tmp_path / "q")
        assert reopened.counts() == {"pending": 1, "claimed": 1, "failed": 0}
        remaining = reopened.claim()
        assert remaining is not None
        assert remaining.payload in ("payload-a", "payload-b")


# ---------------------------------------------------------------------------
# broker lifecycle
# ---------------------------------------------------------------------------


class TestBrokerLifecycle:
    def test_submit_validates_before_queueing(self, tmp_path, top_k_spec, queries):
        broker = Broker(tmp_path / "svc")
        with pytest.raises(TypeError):
            broker.submit({"kind": "noisy-top-k"}, trials=4, seed=0)
        with pytest.raises(ValueError, match="engine"):
            broker.submit(top_k_spec, engine="gpu", trials=4, seed=0)
        variant = SvtVariantSpec(
            queries=queries, epsilon=1.0, variant=3, threshold=250.0, k=1
        )
        with pytest.raises(UnsupportedEngineError):
            broker.submit(variant, engine="batch", trials=4, seed=0)
        with pytest.raises(ValueError, match="trials"):
            broker.submit(top_k_spec, trials=0, seed=0)
        with pytest.raises(ValueError, match="seed"):
            broker.submit(top_k_spec, trials=4, seed=None)
        with pytest.raises(ValueError, match="seed"):
            broker.submit(top_k_spec, trials=4, seed=True)
        with pytest.raises(ValueError, match="chunk_trials"):
            broker.submit(top_k_spec, trials=4, seed=0, chunk_trials=0)
        # Nothing was queued by any of the rejected submissions.
        assert broker.queue.counts()["pending"] == 0

    def test_duplicate_job_id_is_rejected(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        broker.submit(top_k_spec, trials=4, seed=0, job_id="job-a")
        with pytest.raises(ServiceError, match="already exists"):
            broker.submit(top_k_spec, trials=4, seed=0, job_id="job-a")

    def test_unknown_job_raises_not_found(self, tmp_path):
        broker = Broker(tmp_path / "svc")
        with pytest.raises(JobNotFoundError):
            broker.status("job-nope")
        with pytest.raises(JobNotFoundError):
            broker.result("job-nope")

    def test_status_many_matches_individual_statuses(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        done = broker.submit(top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK)
        run_workers(broker, 2)
        fresh = broker.submit(top_k_spec, trials=4, seed=8)
        statuses = broker.status_many([done, fresh, done])  # duplicates collapse
        assert sorted(statuses) == sorted((done, fresh))
        for job_id, batched in statuses.items():
            single = broker.status(job_id)
            assert (batched.state, batched.done_tasks, batched.total_tasks) == (
                single.state,
                single.done_tasks,
                single.total_tasks,
            )
        assert statuses[done].state == "done"
        assert statuses[fresh].state == "submitted"
        assert broker.status_many([]) == {}

    def test_status_many_unknown_id_refuses_the_whole_batch(
        self, tmp_path, top_k_spec
    ):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(top_k_spec, trials=4, seed=0)
        with pytest.raises(JobNotFoundError):
            broker.status_many([job_id, "job-nope"])

    def test_client_status_many_delegates_to_the_broker(
        self, tmp_path, top_k_spec
    ):
        client = JobClient(tmp_path / "svc")
        handle = client.submit(top_k_spec, trials=4, seed=0)
        statuses = client.status_many([handle.job_id])
        assert statuses[handle.job_id].state == "submitted"

    def test_job_progresses_submitted_running_done(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        status = broker.status(job_id)
        assert (status.state, status.total_tasks, status.done_tasks) == (
            "submitted",
            5,
            0,
        )
        worker = Worker(broker)
        assert worker.run_once() is True
        assert broker.status(job_id).state == "running"
        worker.run_until_idle()
        status = broker.status(job_id)
        assert (status.state, status.done_tasks) == ("done", 5)
        assert status.finished

    def test_manifest_records_the_request_and_task_keys(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        manifest = broker.manifest(job_id)
        assert manifest["engine"] == "batch"
        assert manifest["trials"] == TRIALS
        assert manifest["seed"] == 7
        assert manifest["chunk_trials"] == CHUNK
        assert [entry["trials"] for entry in manifest["tasks"]] == [5, 5, 5, 5, 4]
        assert len({entry["key"] for entry in manifest["tasks"]}) == 5
        assert broker.spec(job_id) == top_k_spec

    def test_cancel_drops_pending_tasks(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        status = broker.cancel(job_id)
        assert status.state == "cancelled"
        assert broker.queue.counts()["pending"] == 0
        with pytest.raises(JobFailedError, match="cancelled"):
            broker.result(job_id)
        # Workers find nothing to do.
        assert Worker(broker).run_until_idle() == 0

    def test_crashed_submit_is_uncommitted_and_retryable(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        """The manifest is the commit marker: a submit that dies mid-enqueue
        leaves no job (status says not-found, not stuck-forever), and the
        same job id can be resubmitted cleanly afterwards."""
        broker = Broker(tmp_path / "svc")
        real_put = type(broker.queue).put
        calls = {"n": 0}

        def dying_put(self, payload, *, task_id=None, **kwargs):
            if calls["n"] >= 2:
                raise OSError("disk full")  # the crash, mid-enqueue
            calls["n"] += 1
            return real_put(self, payload, task_id=task_id, **kwargs)

        monkeypatch.setattr(type(broker.queue), "put", dying_put)
        with pytest.raises(OSError, match="disk full"):
            broker.submit(
                top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK,
                job_id="job-retry",
            )
        monkeypatch.undo()
        with pytest.raises(JobNotFoundError):
            broker.status("job-retry")  # never committed
        # An orphan of the crashed submit dead-letters and writes a failed
        # marker before the resubmission: the fresh job must not inherit it.
        broker.mark_failed("job-retry", 0, "poison orphan")
        # Resubmission under the same id succeeds and completes exactly.
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK,
            job_id="job-retry",
        )
        assert broker.status(job_id).state == "submitted"  # stale marker gone
        Worker(broker).run_until_idle()
        assert_results_identical(
            broker.result(job_id),
            run(top_k_spec, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK),
        )

    def test_resubmission_over_a_claimed_orphan_is_a_clear_conflict(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        """An orphan task a worker is mid-executing cannot be replaced: the
        resubmission fails with a ServiceError (CLI exit 2), not a raw
        QueueError traceback."""
        broker = Broker(tmp_path / "svc")
        real_put = type(broker.queue).put
        calls = {"n": 0}

        def dying_put(self, payload, *, task_id=None, **kwargs):
            if calls["n"] >= 2:
                raise OSError("disk full")
            calls["n"] += 1
            return real_put(self, payload, task_id=task_id, **kwargs)

        monkeypatch.setattr(type(broker.queue), "put", dying_put)
        with pytest.raises(OSError):
            broker.submit(
                top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK,
                job_id="job-conflict",
            )
        monkeypatch.undo()
        assert broker.queue.claim(worker_id="busy") is not None  # orphan in flight
        with pytest.raises(ServiceError, match="still claimed"):
            broker.submit(
                top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK,
                job_id="job-conflict",
            )

    def test_stray_files_in_marker_dirs_are_ignored(self, tmp_path, top_k_spec):
        """Non-numeric filenames in done/ or failed/ (editor backups,
        tooling artifacts) must be skipped, not crash status()."""
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        job_dir = broker.jobs_dir / job_id
        (job_dir / "done" / "backup~.json").write_text("{}")
        (job_dir / "failed" / "notes.json").write_text("{}")
        status = broker.status(job_id)
        assert (status.state, status.done_tasks) == ("submitted", 0)
        assert status.failed_tasks == {}

    def test_orphan_markers_outside_the_manifest_are_ignored(
        self, tmp_path, top_k_spec
    ):
        """Markers for chunk indexes the committed manifest does not own
        (left by a crashed prior submission's orphan tasks under a
        different chunking) must not wedge or fail the job's status."""
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK  # 5 tasks
        )
        broker.mark_done(job_id, 7, "bogus-orphan-key")  # index outside 0..4
        broker.mark_failed(job_id, 9, "orphan failure")
        status = broker.status(job_id)
        assert (status.state, status.done_tasks) == ("submitted", 0)
        assert status.failed_tasks == {}
        Worker(broker).run_until_idle()
        status = broker.status(job_id)
        assert (status.state, status.done_tasks) == ("done", 5)
        assert_results_identical(
            broker.result(job_id),
            run(top_k_spec, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK),
        )

    def test_result_before_done_is_a_service_error(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(top_k_spec, trials=TRIALS, seed=7)
        with pytest.raises(ServiceError, match="not done"):
            broker.result(job_id)

    def test_task_keys_are_content_addresses(self, top_k_spec, adaptive_spec):
        from repro.dispatch import make_tasks

        tasks_a = make_tasks(top_k_spec, engine="batch", trials=8, seed=0, chunk_trials=4)
        tasks_b = make_tasks(top_k_spec, engine="batch", trials=8, seed=0, chunk_trials=4)
        assert [task_key(t) for t in tasks_a] == [task_key(t) for t in tasks_b]
        # Any ingredient change changes the key.
        different_seed = make_tasks(
            top_k_spec, engine="batch", trials=8, seed=1, chunk_trials=4
        )
        different_spec = make_tasks(
            adaptive_spec, engine="batch", trials=8, seed=0, chunk_trials=4
        )
        keys = {task_key(t) for t in tasks_a}
        assert keys.isdisjoint(task_key(t) for t in different_seed)
        assert keys.isdisjoint(task_key(t) for t in different_spec)


# ---------------------------------------------------------------------------
# the determinism contract, end to end
# ---------------------------------------------------------------------------


class TestServiceDeterminism:
    @pytest.mark.parametrize("kind", ["top-k", "adaptive"])
    def test_multi_worker_job_bit_identical_to_sharded_run(
        self, tmp_path, top_k_spec, adaptive_spec, kind
    ):
        """The acceptance criterion: submit -> >=2 concurrent workers ->
        merged result == run(spec, trials=B, rng=seed, shards=N)."""
        spec = {"top-k": top_k_spec, "adaptive": adaptive_spec}[kind]
        client = JobClient(tmp_path / "svc")
        handle = client.submit(spec, trials=TRIALS, seed=11, chunk_trials=CHUNK)
        workers = run_workers(client.broker, 3)
        assert sum(w.tasks_done for w in workers) == 5
        via_service = handle.result()
        in_process = run(
            spec, trials=TRIALS, rng=11, shards=3, chunk_trials=CHUNK
        )
        assert_results_identical(via_service, in_process)

    def test_worker_count_does_not_change_the_result(self, tmp_path, top_k_spec):
        results = []
        for count in (1, 4):
            client = JobClient(tmp_path / f"svc-{count}")
            handle = client.submit(
                top_k_spec, trials=TRIALS, seed=5, chunk_trials=CHUNK
            )
            run_workers(client.broker, count)
            results.append(handle.result())
        assert_results_identical(results[0], results[1])

    def test_facade_submit_is_the_async_run(self, tmp_path, top_k_spec):
        handle = submit(
            top_k_spec, root=tmp_path / "svc", trials=TRIALS, rng=3,
            chunk_trials=CHUNK,
        )
        assert handle.status().state == "submitted"
        run_workers(tmp_path / "svc", 2)
        assert_results_identical(
            handle.result(),
            run(top_k_spec, trials=TRIALS, rng=3, shards=2, chunk_trials=CHUNK),
        )

    def test_facade_submit_requires_integer_seed(self, tmp_path, top_k_spec):
        with pytest.raises(ValueError, match="seed"):
            submit(top_k_spec, root=tmp_path / "svc", trials=4, rng=None)

    def test_per_trial_options_cross_the_queue_losslessly(self, tmp_path, queries):
        spec = SparseVectorSpec(
            queries=queries, epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        thresholds = np.linspace(50.0, 450.0, TRIALS)
        client = JobClient(tmp_path / "svc")
        handle = client.submit(
            spec,
            trials=TRIALS,
            seed=13,
            chunk_trials=CHUNK,
            options={"thresholds": thresholds},
        )
        run_workers(client.broker, 2)
        assert_results_identical(
            handle.result(),
            run(
                spec,
                trials=TRIALS,
                rng=13,
                shards=2,
                chunk_trials=CHUNK,
                thresholds=thresholds,
            ),
        )

    def test_worker_crash_mid_task_is_retried_and_result_exact(
        self, tmp_path, top_k_spec
    ):
        """A claimed-but-never-acked task (the crash) expires back into the
        queue; the retry recomputes the identical content-addressed chunk."""
        client = JobClient(tmp_path / "svc")
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=17, chunk_trials=CHUNK
        )
        queue = client.broker.queue
        crashed = queue.claim(worker_id="crasher")  # dies here: no ack
        assert crashed is not None
        assert queue.requeue_expired(lease_seconds=0.0) == [crashed.task_id]
        run_workers(client.broker, 2)
        assert handle.status().state == "done"
        assert_results_identical(
            handle.result(),
            run(top_k_spec, trials=TRIALS, rng=17, shards=2, chunk_trials=CHUNK),
        )

    def test_two_workers_share_one_disk_cache(self, tmp_path, top_k_spec):
        """A resubmitted request is served from the shared cache: the second
        job's tasks are all hits and its result is byte-identical."""
        root = tmp_path / "svc"
        client = JobClient(root)
        first = client.submit(top_k_spec, trials=TRIALS, seed=23, chunk_trials=CHUNK)
        cold_workers = run_workers(client.broker, 2)
        assert sum(w.cache_hits for w in cold_workers) == 0
        second = client.submit(top_k_spec, trials=TRIALS, seed=23, chunk_trials=CHUNK)
        warm_workers = run_workers(client.broker, 2)
        assert sum(w.tasks_done for w in warm_workers) == 5
        assert sum(w.cache_hits for w in warm_workers) == 5
        assert_results_identical(first.result(), second.result())
        assert isinstance(client.broker.cache, DiskResultCache)

    def test_repeated_result_is_served_from_the_merged_entry(
        self, tmp_path, top_k_spec
    ):
        """After the first fetch, result() reads the merged run_key entry
        directly -- it neither re-merges nor rewrites the chunks (deleting a
        chunk after the first fetch proves the second never touches it)."""
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=31, chunk_trials=CHUNK
        )
        Worker(broker).run_until_idle()
        first = broker.result(job_id)
        victim = broker.manifest(job_id)["tasks"][0]["key"]
        for path in broker.cache.directory.glob(f"{victim}.*"):
            path.unlink()
        assert_results_identical(broker.result(job_id), first)

    def test_merged_result_warms_the_facade_cache(self, tmp_path, top_k_spec):
        """result() stores the merged Result under the facade run_key, so an
        in-process run(..., shards=, cache=) over the same directory hits."""
        client = JobClient(tmp_path / "svc")
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=29, chunk_trials=CHUNK
        )
        run_workers(client.broker, 2)
        via_service = handle.result()
        via_facade = run(
            top_k_spec,
            trials=TRIALS,
            rng=29,
            shards=2,
            chunk_trials=CHUNK,
            cache=client.broker.cache,
        )
        assert_results_identical(via_facade, via_service)


# ---------------------------------------------------------------------------
# failure propagation
# ---------------------------------------------------------------------------


class TestJobFailure:
    def test_task_that_keeps_raising_dead_letters_and_fails_the_job(
        self, tmp_path, queries
    ):
        # A threshold *value* the executor cannot coerce passes submit-side
        # validation (options are checked by name, like run()) but raises in
        # the worker -- the canonical "bad request reaches execution" path.
        # max_attempts=2 keeps the retry cycle short.
        spec = SparseVectorSpec(
            queries=queries, epsilon=1.0, threshold=0.0, k=3, monotonic=True
        )
        broker = Broker(tmp_path / "svc", max_attempts=2)
        job_id = broker.submit(
            spec,
            trials=6,
            seed=0,
            chunk_trials=3,
            options={"thresholds": "not-a-number"},
        )
        workers = run_workers(broker, 2)
        assert sum(w.failures for w in workers) == 4  # 2 tasks x 2 attempts
        status = broker.status(job_id)
        assert status.state == "failed"
        assert set(status.failed_tasks) == {0, 1}
        assert "ValueError" in status.failed_tasks[0]
        with pytest.raises(JobFailedError, match="chunk 0"):
            broker.result(job_id)
        assert broker.queue.counts()["failed"] == 2

    def test_submit_rejects_unknown_options_like_run_does(
        self, tmp_path, top_k_spec
    ):
        """An option the executor does not accept fails at submission --
        never after the workers have retried every chunk to exhaustion."""
        broker = Broker(tmp_path / "svc")
        with pytest.raises(ValueError, match="bogus_option"):
            broker.submit(
                top_k_spec, trials=6, seed=0, options={"bogus_option": 1.0}
            )
        assert broker.queue.counts()["pending"] == 0

    def test_corrupt_queue_payload_is_dead_lettered_not_fatal(self, tmp_path):
        """A poison-pill payload (truncated file, producer bug) must cycle
        through nack/dead-letter like any failing task, not crash the
        worker loop and serially kill the fleet."""
        broker = Broker(tmp_path / "svc", max_attempts=2)
        broker.queue.put("{not json", task_id="poison")
        worker = Worker(broker)
        assert worker.run_until_idle() == 2  # two claim -> fail cycles
        assert worker.tasks_done == 0  # nothing completed successfully
        assert worker.failures == 2
        assert broker.queue.counts() == {"pending": 0, "claimed": 0, "failed": 1}
        assert "JSONDecodeError" in broker.queue.failed_error("poison")

    def test_crash_looped_task_fails_the_job_via_the_reaper(
        self, tmp_path, top_k_spec
    ):
        """A task whose worker crashes on every attempt is dead-lettered by
        lease expiry alone -- no surviving worker ever nacks it.  The next
        worker's reaper pass must still write the job's failed marker, or
        the job would report running forever."""
        broker = Broker(tmp_path / "svc", max_attempts=1, lease_seconds=0.0)
        job_id = broker.submit(top_k_spec, trials=8, seed=0, chunk_trials=8)
        assert broker.queue.claim(worker_id="crasher") is not None  # dies here
        assert Worker(broker).run_until_idle() == 0  # reaper pass only
        status = broker.status(job_id)
        assert status.state == "failed"
        assert status.failed_tasks == {0: "lease expired"}
        with pytest.raises(JobFailedError, match="lease expired"):
            broker.result(job_id)

    def test_numpy_integer_seeds_are_accepted(self, tmp_path, top_k_spec):
        """Parity with run(): a np.int64 from an experiment sweep content-
        addresses identically to the plain int."""
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=np.int64(7), chunk_trials=CHUNK
        )
        Worker(broker).run_until_idle()
        assert_results_identical(
            broker.result(job_id),
            run(top_k_spec, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK),
        )

    def test_evicted_chunk_result_is_a_clear_error(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        Worker(broker).run_until_idle()
        # Simulate the LRU cap having evicted one chunk between completion
        # and fetch.
        victim = broker.manifest(job_id)["tasks"][2]["key"]
        for path in broker.cache.directory.glob(f"{victim}.*"):
            path.unlink()
        with pytest.raises(ServiceError, match="missing from the shared cache"):
            broker.result(job_id)

    def test_unreadable_chunk_is_purged_so_resubmission_recomputes(
        self, tmp_path, top_k_spec
    ):
        """result() must evict whatever unreadable remnant caused the miss:
        otherwise a remnant the workers' contains() probe still accepts
        would make every resubmission mark the chunk done without
        recomputing -- permanently unservable."""
        broker = Broker(tmp_path / "svc")
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        Worker(broker).run_until_idle()
        victim = broker.manifest(job_id)["tasks"][2]["key"]
        (broker.cache.directory / f"{victim}.npz").unlink()  # payload lost
        with pytest.raises(ServiceError, match="missing from the shared cache"):
            broker.result(job_id)
        # The orphaned metadata was purged with it ...
        assert not (broker.cache.directory / f"{victim}.json").exists()
        # ... so a resubmission really recomputes the chunk and serves.
        retry = broker.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        worker = Worker(broker)
        worker.run_until_idle()
        assert worker.cache_hits == 4  # every chunk but the purged one
        assert_results_identical(
            broker.result(retry),
            run(top_k_spec, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK),
        )

    def test_stale_dead_letter_does_not_fail_a_resubmitted_job(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        """A dead-letter record left by a crashed submission's orphan must
        not make a later reaper pass fail the fresh job that reuses the
        task id."""
        broker = Broker(tmp_path / "svc", max_attempts=3, lease_seconds=0.0)
        real_put = type(broker.queue).put
        calls = {"n": 0}

        def dying_put(self, payload, *, task_id=None, **kwargs):
            if calls["n"] >= 1:
                raise OSError("crash")
            calls["n"] += 1
            return real_put(self, payload, task_id=task_id, **kwargs)

        monkeypatch.setattr(type(broker.queue), "put", dying_put)
        with pytest.raises(OSError):
            broker.submit(
                top_k_spec, trials=16, seed=0, chunk_trials=8, job_id="job-z"
            )
        monkeypatch.undo()
        # The orphan crash-loops to the dead-letter directory.
        for _ in range(3):
            assert broker.queue.claim(worker_id="crasher") is not None
            broker.queue.requeue_expired(lease_seconds=0.0)
        assert broker.queue.failed_error("job-z-000000") is not None
        # Resubmit; the fresh task expires once (attempts < max) and is
        # requeued -- the reaper hook must not resurrect the stale record.
        job_id = broker.submit(
            top_k_spec, trials=16, seed=0, chunk_trials=8, job_id="job-z"
        )
        assert broker.queue.failed_error("job-z-000000") is None  # cleared
        assert broker.queue.claim(worker_id="slowpoke") is not None
        worker = Worker(broker)
        worker.run_until_idle()  # reaper requeues, then this worker finishes
        status = broker.status(job_id)
        assert status.state == "done"
        assert status.failed_tasks == {}


# ---------------------------------------------------------------------------
# client polling
# ---------------------------------------------------------------------------


class TestClientPolling:
    def test_result_timeout_expires_cleanly(self, tmp_path, top_k_spec):
        client = JobClient(tmp_path / "svc")
        handle = client.submit(top_k_spec, trials=TRIALS, seed=7)
        with pytest.raises(TimeoutError, match="not finished"):
            handle.result(timeout=0.05, poll_interval=0.01)

    def test_result_timeout_sleep_is_clamped_to_the_deadline(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        """Regression: the polling loop used to sleep a full poll_interval
        even when the deadline was nearer, so result(timeout=T) blocked
        until T + poll_interval before raising.  Under a fake clock the
        total slept time must equal the timeout exactly."""
        client = JobClient(tmp_path / "svc")
        handle = client.submit(top_k_spec, trials=TRIALS, seed=7)

        clock = {"now": 1000.0}
        slept = []

        def fake_monotonic():
            return clock["now"]

        def fake_sleep(seconds):
            slept.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr(time, "monotonic", fake_monotonic)
        monkeypatch.setattr(time, "sleep", fake_sleep)
        with pytest.raises(TimeoutError, match="not finished"):
            handle.result(timeout=1.0, poll_interval=0.4)
        # 0.4 + 0.4 + clamped 0.2 -- never a beat past the deadline.
        assert slept == [pytest.approx(0.4), pytest.approx(0.4), pytest.approx(0.2)]
        assert clock["now"] == pytest.approx(1001.0)

    def test_result_polls_until_a_background_worker_finishes(
        self, tmp_path, top_k_spec
    ):
        client = JobClient(tmp_path / "svc")
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        worker = Worker(client.broker, poll_interval=0.01)
        thread = threading.Thread(
            target=worker.serve, kwargs={"idle_exit": True}, daemon=True
        )
        thread.start()
        result = handle.result(timeout=30.0, poll_interval=0.01)
        thread.join(30.0)
        assert_results_identical(
            result,
            run(top_k_spec, trials=TRIALS, rng=7, shards=1, chunk_trials=CHUNK),
        )

    def test_cancelled_jobs_requeued_tasks_are_discarded_not_executed(
        self, tmp_path, top_k_spec
    ):
        """After a cancel, a task that re-enters the queue (nack or lease
        expiry of an in-flight claim) must be dropped by the next worker,
        not executed and retried until dead-lettered."""
        client = JobClient(tmp_path / "svc")
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK
        )
        queue = client.broker.queue
        assert queue.claim(worker_id="in-flight") is not None
        handle.cancel()  # removes the 4 pending tasks
        queue.requeue_expired(lease_seconds=0.0)  # the claim re-enters
        worker = Worker(client.broker)
        worker.run_until_idle()
        assert worker.tasks_discarded == 1
        assert worker.tasks_done == 0
        assert queue.is_idle
        job_dir = client.broker.jobs_dir / handle.job_id
        assert not list((job_dir / "done").glob("*.json"))

    def test_cancelled_job_raises_job_failed_from_result(self, tmp_path, top_k_spec):
        client = JobClient(tmp_path / "svc")
        handle = client.submit(top_k_spec, trials=TRIALS, seed=7)
        handle.cancel()
        with pytest.raises(JobFailedError, match="cancelled"):
            handle.result(timeout=1.0)

    def test_reaper_runs_are_throttled_to_the_lease_timescale(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        """With a 300s lease the claimed-directory scan must not run on
        every loop iteration -- once per run_until_idle drain here."""
        broker = Broker(tmp_path / "svc")  # default lease: 300s
        broker.submit(top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK)
        calls = {"n": 0}
        real = type(broker.queue).requeue_expired

        def counting(self, lease_seconds=None):
            calls["n"] += 1
            return real(self, lease_seconds)

        monkeypatch.setattr(type(broker.queue), "requeue_expired", counting)
        worker = Worker(broker)
        assert worker.run_until_idle() == 5  # six run_once calls (last idle)
        assert calls["n"] == 1

    def test_worker_serve_respects_max_tasks(self, tmp_path, top_k_spec):
        client = JobClient(tmp_path / "svc")
        client.submit(top_k_spec, trials=TRIALS, seed=7, chunk_trials=CHUNK)
        worker = Worker(client.broker, poll_interval=0.01)
        assert worker.serve(max_tasks=2) == 2
        assert client.broker.queue.counts()["pending"] == 3


# ---------------------------------------------------------------------------
# CLI front-end
# ---------------------------------------------------------------------------


class TestServiceCLI:
    @pytest.fixture
    def spec_file(self, tmp_path):
        spec = NoisyTopKSpec(
            queries=[120.0, 90.0, 85.0, 30.0, 5.0], epsilon=1.0, k=2, monotonic=True
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        return path

    def test_full_cycle_matches_run_spec_sharded(self, spec_file, tmp_path, capsys):
        from repro.evaluation.cli import main

        root = str(tmp_path / "svc")
        shared = [
            "--trials", "32", "--seed", "0", "--chunk-trials", "8",
        ]
        assert main(["run-spec", str(spec_file), "--shards", "2"] + shared) == 0
        reference = capsys.readouterr().out.split("===\n", 1)[1]

        assert main(["submit", str(spec_file), "--root", root] + shared) == 0
        out = capsys.readouterr().out
        assert "submitted noisy-top-k for 32 trial(s) as 4 task(s)" in out
        job_id = out.rsplit("job id: ", 1)[1].strip()

        assert main(["job-status", job_id, "--root", root]) == 0
        assert "submitted (0/4 tasks done)" in capsys.readouterr().out

        assert main(["serve-worker", "--root", root, "--idle-exit"]) == 0
        assert "4 task(s) processed" in capsys.readouterr().out

        assert main(["job-status", job_id, "--root", root]) == 0
        assert "done (4/4 tasks done)" in capsys.readouterr().out

        assert main(["job-result", job_id, "--root", root]) == 0
        served = capsys.readouterr().out.split("===\n", 1)[1]
        # The service result table and trial lines are byte-identical to the
        # in-process sharded run's (only the title differs).
        assert served == reference

    def test_job_result_wait_times_out_cleanly(self, spec_file, tmp_path, capsys):
        from repro.evaluation.cli import main

        root = str(tmp_path / "svc")
        assert main(["submit", str(spec_file), "--root", root, "--seed", "0"]) == 0
        job_id = capsys.readouterr().out.rsplit("job id: ", 1)[1].strip()
        with pytest.raises(SystemExit) as excinfo:
            main(["job-result", job_id, "--root", root, "--wait", "0.05"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_job_id_exits_two_with_one_line(self, tmp_path, capsys):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["job-status", "job-nope", "--root", str(tmp_path / "svc")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    def test_malformed_job_id_exits_two_with_one_line(self, tmp_path, capsys):
        # A pasted path where the job id belongs (ValueError from the job-id
        # check) is user-caused: one-line diagnosis, never a traceback.
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["job-status", "some/spec.json", "--root", str(tmp_path / "svc")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1
        assert "invalid job id" in err

    def test_service_commands_require_root(self, spec_file):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit):
            main(["submit", str(spec_file)])
        with pytest.raises(SystemExit):
            main(["serve-worker"])
        with pytest.raises(SystemExit):
            main(["job-status", "job-x"])

    def test_job_commands_require_an_id(self, tmp_path):
        from repro.evaluation.cli import main

        for command in ("job-status", "job-result"):
            with pytest.raises(SystemExit):
                main([command, "--root", str(tmp_path)])

    def test_service_flags_rejected_elsewhere(self, spec_file):
        from repro.evaluation.cli import main

        with pytest.raises(SystemExit):
            main(["figure1", "--root", "x"])
        with pytest.raises(SystemExit):
            main(["run-spec", str(spec_file), "--max-tasks", "2"])
        with pytest.raises(SystemExit):
            main(["submit", str(spec_file), "--root", "x", "--wait", "1"])
        with pytest.raises(SystemExit):
            main(["job-status", "j", "--root", "x", "--idle-exit"])


# ---------------------------------------------------------------------------
# service-level cache eviction plumbing
# ---------------------------------------------------------------------------


class TestServiceCacheCap:
    def test_broker_wires_the_lru_cap_through(self, tmp_path):
        broker = Broker(tmp_path / "svc", cache_max_bytes=1 << 20)
        assert isinstance(broker.cache, DiskResultCache)
        assert broker.cache.max_bytes == 1 << 20

    def test_memory_backends_keep_the_service_disk_free(self, tmp_path, top_k_spec):
        broker = Broker(
            tmp_path / "svc",
            queue=MemoryJobQueue(),
            cache=MemoryResultCache(),
        )
        job_id = broker.submit(
            top_k_spec, trials=TRIALS, seed=3, chunk_trials=CHUNK
        )
        Worker(broker).run_until_idle()
        assert_results_identical(
            broker.result(job_id),
            run(top_k_spec, trials=TRIALS, rng=3, shards=1, chunk_trials=CHUNK),
        )
        assert not (tmp_path / "svc" / "queue").exists()
