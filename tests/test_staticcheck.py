"""Tests for the AST invariant linter (:mod:`repro.staticcheck`).

Each rule gets fixture packages exercising the good pattern (no finding),
the bad pattern (a true-positive finding), and an inline suppression with
a justification.  The engine's own machinery -- suppression hygiene,
baseline fingerprint matching, parse errors, the CLI verb -- is covered
separately, and a meta-test asserts the live ``repro`` tree is lint-clean
modulo the committed baseline.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    ALL_RULES,
    DEFAULT_BASELINE,
    RULE_NAMES,
    default_package_root,
    lint_package,
    load_baseline,
    partition_findings,
    run_rules,
    write_baseline,
)
from repro.staticcheck.core import SUPPRESSION_RULE, PARSE_RULE


def make_pkg(tmp_path: Path, files: dict, name: str = "pkg") -> Path:
    """Materialize a fixture package tree and return its root."""
    root = tmp_path / name
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("", encoding="utf-8")
    return root


def findings_for(tmp_path: Path, files: dict, rule: str = None) -> list:
    report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
    if rule is None:
        return report.findings
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# rule: no-wallclock
# ---------------------------------------------------------------------------


class TestNoWallclock:
    BAD = {
        "engine/clock.py": """
            import time

            def stamp():
                return time.time()
            """
    }

    def test_true_positive(self, tmp_path):
        found = findings_for(tmp_path, self.BAD, "no-wallclock")
        assert len(found) == 1
        assert found[0].path == "pkg/engine/clock.py"
        assert "time.time" in found[0].message

    def test_datetime_now_and_aliased_import(self, tmp_path):
        files = {
            "core/clock.py": """
                from datetime import datetime
                import time as t

                def stamp():
                    return datetime.now(), t.monotonic()
                """
        }
        rules = {f.message for f in findings_for(tmp_path, files, "no-wallclock")}
        assert len(rules) == 2

    def test_good_outside_scope(self, tmp_path):
        # The service layer legitimately reads the clock (leases, seq).
        files = {
            "service/lease.py": """
                import time

                def now():
                    return time.time()
                """
        }
        assert findings_for(tmp_path, files, "no-wallclock") == []

    def test_suppressed_with_justification(self, tmp_path):
        files = {
            "engine/clock.py": """
                import time

                def stamp():
                    # repro-lint: disable=no-wallclock -- diagnostic only
                    return time.time()
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.findings] == []
        assert [f.rule for f in report.suppressed] == ["no-wallclock"]


# ---------------------------------------------------------------------------
# rule: no-unseeded-rng
# ---------------------------------------------------------------------------


class TestNoUnseededRng:
    def test_argless_default_rng(self, tmp_path):
        files = {
            "mechanisms/noise.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().laplace()
                """
        }
        found = findings_for(tmp_path, files, "no-unseeded-rng")
        assert len(found) == 1
        assert "default_rng" in found[0].message

    def test_seeded_default_rng_is_fine(self, tmp_path):
        files = {
            "mechanisms/noise.py": """
                import numpy as np

                def draw(seed):
                    return np.random.default_rng(seed).laplace()
                """
        }
        assert findings_for(tmp_path, files, "no-unseeded-rng") == []

    def test_stdlib_random_and_legacy_numpy(self, tmp_path):
        files = {
            "api/jitter.py": """
                import random
                import numpy as np

                def draw():
                    return random.random() + np.random.normal()
                """
        }
        found = findings_for(tmp_path, files, "no-unseeded-rng")
        assert len(found) == 2

    def test_rng_module_exempt(self, tmp_path):
        # The documented default path: ensure_rng's OS-seeded fallback.
        files = {
            "primitives/rng.py": """
                import numpy as np

                def ensure_rng(rng=None):
                    if rng is None:
                        return np.random.default_rng()
                    return np.random.default_rng(rng)
                """
        }
        assert findings_for(tmp_path, files, "no-unseeded-rng") == []

    def test_suppressed(self, tmp_path):
        files = {
            "engine/noise.py": """
                import numpy as np

                def draw():
                    # repro-lint: disable=no-unseeded-rng -- smoke-only path
                    return np.random.default_rng().laplace()
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["no-unseeded-rng"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: atomic-write
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_plain_open_w_in_durable_layer(self, tmp_path):
        files = {
            "service/state.py": """
                def save(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """
        }
        found = findings_for(tmp_path, files, "atomic-write")
        assert len(found) == 1
        assert "open" in found[0].message

    def test_write_text_in_durable_layer(self, tmp_path):
        files = {
            "tenancy/state.py": """
                from pathlib import Path

                def save(path, text):
                    Path(path).write_text(text)
                """
        }
        assert len(findings_for(tmp_path, files, "atomic-write")) == 1

    def test_append_and_read_modes_are_fine(self, tmp_path):
        files = {
            "service/journal.py": """
                def append(path, line):
                    with open(path, "a") as handle:
                        handle.write(line)

                def load(path):
                    with open(path, "r") as handle:
                        return handle.read()
                """
        }
        assert findings_for(tmp_path, files, "atomic-write") == []

    def test_atomic_helper_is_exempt(self, tmp_path):
        files = {
            "service/io.py": """
                import os
                import tempfile

                def atomic_write_bytes(path, payload):
                    handle, tmp = tempfile.mkstemp(dir=".")
                    with open(tmp, "wb") as out:
                        out.write(payload)
                    os.replace(tmp, path)
                """
        }
        assert findings_for(tmp_path, files, "atomic-write") == []

    def test_outside_durable_scope_is_fine(self, tmp_path):
        files = {
            "analysis/report.py": """
                def save(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """
        }
        assert findings_for(tmp_path, files, "atomic-write") == []

    def test_suppressed(self, tmp_path):
        files = {
            "chaos/state.py": """
                def save(path, text):
                    # repro-lint: disable=atomic-write -- temp file, published atomically below
                    with open(path, "w") as handle:
                        handle.write(text)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["atomic-write"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: no-blanket-except
# ---------------------------------------------------------------------------


class TestNoBlanketExcept:
    def test_bare_except(self, tmp_path):
        files = {
            "analysis/any.py": """
                def safe(fn):
                    try:
                        fn()
                    except:
                        pass
                """
        }
        found = findings_for(tmp_path, files, "no-blanket-except")
        assert len(found) == 1
        assert "bare" in found[0].message

    def test_swallowed_base_exception(self, tmp_path):
        files = {
            "service/run.py": """
                def safe(fn):
                    try:
                        fn()
                    except BaseException:
                        return None
                """
        }
        assert len(findings_for(tmp_path, files, "no-blanket-except")) == 1

    def test_cleanup_and_reraise_is_fine(self, tmp_path):
        files = {
            "service/run.py": """
                import os

                def safe(fn, tmp):
                    try:
                        fn()
                    except BaseException:
                        os.unlink(tmp)
                        raise
                """
        }
        assert findings_for(tmp_path, files, "no-blanket-except") == []

    def test_suppressed(self, tmp_path):
        files = {
            "service/run.py": """
                def safe(fn, errors):
                    try:
                        fn()
                    # repro-lint: disable=no-blanket-except -- trampoline; re-raised by joiner
                    except BaseException as exc:
                        errors.append(exc)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["no-blanket-except"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: justify-broad-except
# ---------------------------------------------------------------------------


class TestJustifyBroadExcept:
    def test_unjustified_in_service(self, tmp_path):
        files = {
            "service/run.py": """
                def safe(fn):
                    try:
                        fn()
                    except Exception:
                        return None
                """
        }
        found = findings_for(tmp_path, files, "justify-broad-except")
        assert len(found) == 1

    def test_justified_is_fine(self, tmp_path):
        files = {
            "service/run.py": """
                def safe(fn):
                    try:
                        fn()
                    except Exception:  # noqa: BLE001 -- observability is best effort
                        return None
                """
        }
        assert findings_for(tmp_path, files, "justify-broad-except") == []

    def test_bare_tag_without_reason_is_a_finding(self, tmp_path):
        files = {
            "tenancy/run.py": """
                def safe(fn):
                    try:
                        fn()
                    except Exception:  # noqa: BLE001
                        return None
                """
        }
        assert len(findings_for(tmp_path, files, "justify-broad-except")) == 1

    def test_outside_scope_is_fine(self, tmp_path):
        files = {
            "engine/run.py": """
                def safe(fn):
                    try:
                        fn()
                    except Exception:
                        return None
                """
        }
        assert findings_for(tmp_path, files, "justify-broad-except") == []

    def test_suppressed(self, tmp_path):
        files = {
            "chaos/run.py": """
                def safe(fn):
                    try:
                        fn()
                    # repro-lint: disable=justify-broad-except -- fixture exercises the lint suppression path itself
                    except Exception:
                        return None
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["justify-broad-except"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: fencing-token
# ---------------------------------------------------------------------------


class TestFencingToken:
    def test_tokenless_ack(self, tmp_path):
        files = {
            "service/loop.py": """
                def drain(queue, claimed):
                    queue.ack(claimed.task_id)
                """
        }
        found = findings_for(tmp_path, files, "fencing-token")
        assert len(found) == 1
        assert "fencing token" in found[0].message

    def test_literal_token(self, tmp_path):
        files = {
            "service/loop.py": """
                def drain(queue, claimed):
                    queue.nack(claimed.task_id, token=1)
                """
        }
        found = findings_for(tmp_path, files, "fencing-token")
        assert len(found) == 1
        assert "literal" in found[0].message

    def test_threaded_token_is_fine(self, tmp_path):
        files = {
            "service/loop.py": """
                def drain(queue, claimed):
                    queue.heartbeat(claimed.task_id, token=claimed.attempts)
                    queue.ack(claimed.task_id, token=claimed.attempts)
                """
        }
        assert findings_for(tmp_path, files, "fencing-token") == []

    def test_suppressed(self, tmp_path):
        files = {
            "service/loop.py": """
                def drain(queue, claimed):
                    # repro-lint: disable=fencing-token -- operator repair tool; bypasses fencing deliberately
                    queue.ack(claimed.task_id)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["fencing-token"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: lock-discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    BAD = {
        "service/counter.py": """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """
    }

    def test_mixed_access(self, tmp_path):
        found = findings_for(tmp_path, self.BAD, "lock-discipline")
        assert len(found) == 1
        assert "_count" in found[0].message

    def test_consistent_access_is_fine(self, tmp_path):
        files = {
            "service/counter.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        with self._lock:
                            self._count = 0
                """
        }
        assert findings_for(tmp_path, files, "lock-discipline") == []

    def test_init_does_not_count_as_unlocked(self, tmp_path):
        files = {
            "service/counter.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1
                """
        }
        assert findings_for(tmp_path, files, "lock-discipline") == []

    def test_lockless_class_is_fine(self, tmp_path):
        files = {
            "service/counter.py": """
                class Counter:
                    def __init__(self):
                        self._count = 0

                    def bump(self):
                        self._count += 1
                """
        }
        assert findings_for(tmp_path, files, "lock-discipline") == []

    def test_suppressed(self, tmp_path):
        files = {
            "service/counter.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        # repro-lint: disable=lock-discipline -- only called before threads start
                        self._count = 0
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["lock-discipline"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: canonical-json
# ---------------------------------------------------------------------------


class TestCanonicalJson:
    def test_unsorted_dumps_in_durable_writer(self, tmp_path):
        files = {
            "service/queue.py": """
                import json

                def serialize(payload):
                    return json.dumps(payload)
                """
        }
        found = findings_for(tmp_path, files, "canonical-json")
        assert len(found) == 1

    def test_sorted_dumps_is_fine(self, tmp_path):
        files = {
            "service/queue.py": """
                import json

                def serialize(payload):
                    return json.dumps(payload, sort_keys=True)
                """
        }
        assert findings_for(tmp_path, files, "canonical-json") == []

    def test_outside_scope_is_fine(self, tmp_path):
        files = {
            "service/client.py": """
                import json

                def serialize(payload):
                    return json.dumps(payload)
                """
        }
        assert findings_for(tmp_path, files, "canonical-json") == []

    def test_suppressed(self, tmp_path):
        files = {
            "tenancy/ledger.py": """
                import json

                def serialize(payload):
                    # repro-lint: disable=canonical-json -- scratch debug dump, never persisted
                    return json.dumps(payload)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["canonical-json"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: os-exit-confined
# ---------------------------------------------------------------------------


class TestOsExitConfined:
    def test_os_exit_outside_chaos(self, tmp_path):
        files = {
            "service/worker.py": """
                import os

                def die():
                    os._exit(1)
                """
        }
        found = findings_for(tmp_path, files, "os-exit-confined")
        assert len(found) == 1

    def test_chaos_is_exempt(self, tmp_path):
        files = {
            "chaos/faults.py": """
                import os

                def crash():
                    os._exit(23)
                """
        }
        assert findings_for(tmp_path, files, "os-exit-confined") == []

    def test_suppressed(self, tmp_path):
        files = {
            "service/worker.py": """
                import os

                def die():
                    # repro-lint: disable=os-exit-confined -- post-fork child must not run atexit handlers
                    os._exit(1)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["os-exit-confined"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_upward_module_level_import(self, tmp_path):
        files = {
            "engine/batch.py": """
                from pkg.service.queue import FileJobQueue
                """,
            "service/queue.py": """
                class FileJobQueue:
                    pass
                """,
        }
        found = findings_for(tmp_path, files, "layering")
        assert len(found) == 1
        assert "service" in found[0].message

    def test_downward_import_is_fine(self, tmp_path):
        files = {
            "service/queue.py": """
                from pkg.engine.batch import run_batch
                """,
            "engine/batch.py": """
                def run_batch():
                    pass
                """,
        }
        assert findings_for(tmp_path, files, "layering") == []

    def test_function_local_import_is_the_escape_hatch(self, tmp_path):
        files = {
            "api/facade.py": """
                def submit(root):
                    from pkg.service.client import JobClient
                    return JobClient(root)
                """,
            "service/client.py": """
                class JobClient:
                    pass
                """,
        }
        assert findings_for(tmp_path, files, "layering") == []

    def test_suppressed(self, tmp_path):
        files = {
            "engine/session.py": """
                # repro-lint: disable=layering -- session predates the facade split
                from pkg.api.facade import run
                """,
            "api/facade.py": """
                def run():
                    pass
                """,
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.suppressed] == ["layering"]
        assert report.findings == []


# ---------------------------------------------------------------------------
# rule: spec-immutability
# ---------------------------------------------------------------------------


class TestSpecImmutability:
    def test_true_positive_outside_post_init(self, tmp_path):
        files = {
            "api/mutate.py": """
                def widen(spec, epsilon):
                    object.__setattr__(spec, "epsilon", epsilon)
                    return spec
                """
        }
        found = findings_for(tmp_path, files, "spec-immutability")
        assert len(found) == 1
        assert found[0].path == "pkg/api/mutate.py"
        assert "__post_init__" in found[0].message

    def test_true_positive_in_any_layer(self, tmp_path):
        # The frozen-spec contract is package-wide, not layer-scoped: a
        # service-layer mutation corrupts cache keys just the same.
        files = {
            "service/patch.py": """
                def rewrite(job):
                    object.__setattr__(job.spec, "trials", 1)
                """
        }
        assert len(findings_for(tmp_path, files, "spec-immutability")) == 1

    def test_good_inside_post_init(self, tmp_path):
        files = {
            "api/spec.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Spec:
                    epsilon: float

                    def __post_init__(self):
                        object.__setattr__(self, "epsilon", float(self.epsilon))
                """
        }
        assert findings_for(tmp_path, files, "spec-immutability") == []

    def test_plain_setattr_untouched(self, tmp_path):
        # Ordinary attribute assignment on mutable objects is not the
        # frozen-dataclass back door.
        files = {
            "service/state.py": """
                def mark(worker):
                    worker.busy = True
                    setattr(worker, "busy", True)
                """
        }
        assert findings_for(tmp_path, files, "spec-immutability") == []

    def test_suppressed_with_justification(self, tmp_path):
        files = {
            "dispatch/memo.py": """
                def memoize(spec, digest):
                    # repro-lint: disable=spec-immutability -- write-once memo
                    object.__setattr__(spec, "_digest", digest)
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["spec-immutability"]


class TestDeterministicScopeExtensions:
    """PR 9 widened the deterministic layers to alignment + privcheck."""

    @pytest.mark.parametrize("layer", ["alignment", "privcheck"])
    def test_wallclock_flagged(self, tmp_path, layer):
        files = {
            f"{layer}/clock.py": """
                import time

                def stamp():
                    return time.time()
                """
        }
        assert len(findings_for(tmp_path, files, "no-wallclock")) == 1

    @pytest.mark.parametrize("layer", ["alignment", "privcheck"])
    def test_unseeded_rng_flagged(self, tmp_path, layer):
        files = {
            f"{layer}/noise.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().laplace()
                """
        }
        assert len(findings_for(tmp_path, files, "no-unseeded-rng")) == 1

    def test_privcheck_is_ranked(self):
        from repro.staticcheck.rules import DETERMINISTIC_SUBPACKAGES, LAYER_RANKS

        assert "privcheck" in LAYER_RANKS
        assert "alignment" in LAYER_RANKS
        assert "alignment" in DETERMINISTIC_SUBPACKAGES
        assert "privcheck" in DETERMINISTIC_SUBPACKAGES


# ---------------------------------------------------------------------------
# engine machinery: suppressions, baseline, parse errors
# ---------------------------------------------------------------------------


class TestSuppressionHygiene:
    def test_missing_justification_does_not_suppress(self, tmp_path):
        files = {
            "engine/clock.py": """
                import time

                def stamp():
                    # repro-lint: disable=no-wallclock
                    return time.time()
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["no-wallclock", SUPPRESSION_RULE]
        assert report.suppressed == []

    def test_unknown_rule_name_is_a_finding(self, tmp_path):
        files = {
            "engine/clock.py": """
                # repro-lint: disable=no-such-rule -- because reasons
                x = 1
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.findings] == [SUPPRESSION_RULE]
        assert "no-such-rule" in report.findings[0].message

    def test_trailing_comment_suppresses_same_line(self, tmp_path):
        files = {
            "engine/clock.py": """
                import time

                def stamp():
                    return time.time()  # repro-lint: disable=no-wallclock -- diagnostic only
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["no-wallclock"]

    def test_suppression_only_covers_named_rule(self, tmp_path):
        files = {
            "dispatch/cache.py": """
                import json
                import time

                def index():
                    # repro-lint: disable=no-wallclock -- diagnostic only
                    return json.dumps({"at": time.time()})
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.findings] == ["canonical-json"]
        assert [f.rule for f in report.suppressed] == ["no-wallclock"]


class TestBaseline:
    BAD = {
        "engine/clock.py": """
            import time

            def stamp():
                return time.time()
            """
    }

    def test_baselined_finding_is_accepted(self, tmp_path):
        root = make_pkg(tmp_path, self.BAD)
        report = run_rules(root, ALL_RULES)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        new, accepted, stale = partition_findings(
            report.findings, load_baseline(baseline_path)
        )
        assert new == []
        assert len(accepted) == 1
        assert stale == []

    def test_fingerprint_survives_line_drift(self, tmp_path):
        root = make_pkg(tmp_path, self.BAD)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_rules(root, ALL_RULES).findings)
        # Insert lines above the finding: the line number moves, the
        # fingerprint (rule + path + source line) does not.
        target = root / "engine" / "clock.py"
        target.write_text(
            "# a new leading comment\n# another\n" + target.read_text()
        )
        report = run_rules(root, ALL_RULES)
        new, accepted, stale = partition_findings(
            report.findings, load_baseline(baseline_path)
        )
        assert new == []
        assert len(accepted) == 1

    def test_new_finding_is_not_masked_by_baseline(self, tmp_path):
        root = make_pkg(tmp_path, self.BAD)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_rules(root, ALL_RULES).findings)
        (root / "engine" / "other.py").write_text(
            "import time\n\ndef other():\n    return time.monotonic()\n"
        )
        report = run_rules(root, ALL_RULES)
        new, accepted, stale = partition_findings(
            report.findings, load_baseline(baseline_path)
        )
        assert len(new) == 1
        assert new[0].path == "pkg/engine/other.py"

    def test_stale_entries_are_reported(self, tmp_path):
        root = make_pkg(tmp_path, self.BAD)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_rules(root, ALL_RULES).findings)
        (root / "engine" / "clock.py").write_text("def stamp():\n    return 0\n")
        report = run_rules(root, ALL_RULES)
        new, accepted, stale = partition_findings(
            report.findings, load_baseline(baseline_path)
        )
        assert new == [] and accepted == []
        assert len(stale) == 1

    def test_duplicate_findings_need_duplicate_entries(self, tmp_path):
        files = {
            "engine/clock.py": """
                import time

                def a():
                    return time.time()

                def b():
                    return time.time()
                """
        }
        root = make_pkg(tmp_path, files)
        report = run_rules(root, ALL_RULES)
        assert len(report.findings) == 2
        # Baseline only one of the two identical lines: the other is new.
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings[:1])
        new, accepted, _ = partition_findings(
            report.findings, load_baseline(baseline_path)
        )
        assert len(new) == 1 and len(accepted) == 1


class TestEngineBasics:
    def test_parse_error_is_a_finding(self, tmp_path):
        files = {"engine/broken.py": "def broken(:\n"}
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert [f.rule for f in report.findings] == [PARSE_RULE]

    def test_rule_names_are_unique_and_kebab(self, tmp_path):
        assert len(set(RULE_NAMES)) == len(RULE_NAMES)
        for name in RULE_NAMES:
            assert name == name.lower() and " " not in name

    def test_clean_package(self, tmp_path):
        files = {
            "engine/batch.py": """
                import numpy as np

                def run(seed):
                    return np.random.default_rng(seed).laplace()
                """
        }
        report = run_rules(make_pkg(tmp_path, files), ALL_RULES)
        assert report.findings == [] and report.suppressed == []


# ---------------------------------------------------------------------------
# the live tree and the CLI verb
# ---------------------------------------------------------------------------


class TestLiveTree:
    def test_live_tree_is_clean_modulo_baseline(self):
        """The shipped package has no findings beyond the committed baseline."""
        report, new, accepted, stale = lint_package()
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == [], f"stale baseline entries: {stale}"

    def test_committed_baseline_is_small_and_explained(self):
        entries = load_baseline(DEFAULT_BASELINE)
        # The baseline exists to hold accepted findings, not to hide new
        # ones; it must not silently grow.
        assert 0 < len(entries) <= 8
        assert all(entry["rule"] == "layering" for entry in entries)
        assert all(
            entry["path"] == "repro/engine/session.py" for entry in entries
        )


class TestLintCli:
    def _run(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.evaluation.cli", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def test_shipped_tree_exits_zero(self):
        proc = self._run("lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_python_dash_m_repro_alias(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violation_exits_two_with_findings(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "engine/clock.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        proc = self._run("lint", str(root))
        assert proc.returncode == 2
        assert "no-wallclock" in proc.stdout
        assert "hint:" in proc.stdout

    def test_update_baseline_then_clean(self, tmp_path):
        root = make_pkg(
            tmp_path,
            {
                "engine/clock.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        proc = self._run("lint", str(root), "--update-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        baseline = json.loads(
            (root / "staticcheck" / "baseline.json").read_text()
        )
        assert len(baseline["findings"]) == 1
        proc = self._run("lint", str(root))
        assert proc.returncode == 0
        assert "1 baselined" in proc.stdout

    def test_list_rules(self):
        proc = self._run("lint", "--list-rules")
        assert proc.returncode == 0
        for name in RULE_NAMES:
            assert name in proc.stdout

    def test_missing_target_exits_two(self, tmp_path):
        proc = self._run("lint", str(tmp_path / "nope"))
        assert proc.returncode == 2
        assert "not a directory" in proc.stderr

    def test_update_baseline_wrong_command_rejected(self):
        proc = self._run("metrics", "--update-baseline", "--root", "/tmp/x")
        assert proc.returncode == 2
