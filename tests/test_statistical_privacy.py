"""Statistical checks of the paper's headline claims.

These tests are slower than the unit tests (they are Monte-Carlo based) but
still run in a few seconds each.  They verify the *quantitative* claims of
the paper on synthetic data:

* Corollary 1: the BLUE fusion reduces MSE by (k-1)/2k for counting queries.
* Section 6.2: the SVT gap fusion reduces MSE towards 50 % for monotonic
  queries.
* Theorem 2 / Theorem 4 (indirectly): empirical output distributions on
  adjacent databases respect the epsilon bound (via the Monte-Carlo
  verifier), and the alignment checker accepts the mechanisms.
* Figure 3/4 behaviour: the adaptive SVT answers more queries and retains
  budget.
"""

import numpy as np
import pytest

from repro.alignment.verifier import EmpiricalDPVerifier
from repro.core.adaptive_svt import AdaptiveSparseVectorWithGap
from repro.core.noisy_top_k import NoisyTopKWithGap
from repro.core.select_measure import select_and_measure_top_k
from repro.evaluation.harness import (
    run_adaptive_comparison,
    run_remaining_budget,
    run_svt_mse_improvement,
)
from repro.mechanisms.sparse_vector import SparseVector


class TestCorollary1Claim:
    def test_mse_reduction_tracks_k_minus_one_over_two_k(self):
        # Corollary 1's rate assumes the selection identifies the true top k
        # (as on the paper's large retail datasets, where the top counts are
        # separated by far more than the selection noise), so use a
        # well-separated count vector here; the dataset-level experiments in
        # the benchmark harness exercise the realistic regime.
        counts = np.linspace(5000.0, 200.0, 100)
        rng = np.random.default_rng(0)
        for k in (2, 5, 10):
            baseline, fused = [], []
            for _ in range(150):
                run = select_and_measure_top_k(
                    counts, epsilon=0.7, k=k, monotonic=True, rng=rng
                )
                baseline.extend(run.baseline_squared_errors())
                fused.extend(run.fused_squared_errors())
            improvement = 1.0 - np.mean(fused) / np.mean(baseline)
            expected = (k - 1) / (2.0 * k)
            assert improvement == pytest.approx(expected, abs=0.12)


class TestSection62Claim:
    def test_svt_gap_fusion_improvement_grows_with_k(self, item_counts):
        small = run_svt_mse_improvement(
            item_counts, epsilon=0.7, k=2, trials=150, rng=1
        )
        large = run_svt_mse_improvement(
            item_counts, epsilon=0.7, k=15, trials=150, rng=1
        )
        assert large.improvement_percent > small.improvement_percent
        assert large.improvement_percent > 25.0


class TestAdaptivityClaims:
    def test_adaptive_answers_more_with_same_budget(self, item_counts):
        result = run_adaptive_comparison(
            item_counts, epsilon=0.7, k=10, trials=40, rng=2
        )
        assert result.adaptive_answers > result.svt_answers
        # Most adaptive answers should come from the cheap top branch on this
        # well-separated data, as in Figure 3 of the paper.
        assert result.adaptive_top_answers > result.adaptive_middle_answers

    def test_remaining_budget_substantial(self, item_counts):
        result = run_remaining_budget(item_counts, epsilon=0.7, k=10, trials=40, rng=3)
        assert result.remaining_percent > 20.0

    def test_standard_svt_uses_full_budget_at_k_answers(self, item_counts):
        threshold = float(np.sort(item_counts)[-30])
        svt = SparseVector(epsilon=0.7, threshold=threshold, k=5, monotonic=True)
        result = svt.run(item_counts, rng=0)
        if result.num_answered == 5:
            assert result.remaining_budget == pytest.approx(0.0, abs=1e-9)


class TestEmpiricalPrivacy:
    def test_noisy_top_k_with_gap_index_distribution_respects_epsilon(self):
        counts = np.array([15.0, 14.0, 13.0, 4.0, 2.0])
        neighbour = counts - np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        epsilon = 0.5
        mech = NoisyTopKWithGap(epsilon=epsilon, k=2, monotonic=True)
        verifier = EmpiricalDPVerifier(epsilon=epsilon, trials=4000, slack=1.5)
        report = verifier.check(
            run_on_d=lambda g: mech.select(counts, rng=g),
            run_on_d_prime=lambda g: mech.select(neighbour, rng=g),
            event=lambda result: tuple(result.indices),
            rng=0,
        )
        assert report.passed, (report.worst_event, report.worst_ratio)

    def test_adaptive_svt_answer_pattern_respects_epsilon(self):
        counts = np.array([30.0, 5.0, 28.0, 4.0, 26.0])
        neighbour = counts - np.array([1.0, 1.0, 0.0, 1.0, 1.0])
        epsilon = 0.5
        verifier = EmpiricalDPVerifier(epsilon=epsilon, trials=4000, slack=1.5)

        def runner(values):
            def run(generator):
                mech = AdaptiveSparseVectorWithGap(
                    epsilon=epsilon, threshold=20.0, k=2, monotonic=True
                )
                return mech.run(values, rng=generator)

            return run

        report = verifier.check(
            run_on_d=runner(counts),
            run_on_d_prime=runner(neighbour),
            event=lambda result: tuple(
                (o.index, o.branch.value) for o in result.outcomes if o.above
            ),
            rng=1,
        )
        assert report.passed, (report.worst_event, report.worst_ratio)
