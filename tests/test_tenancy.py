"""Tests of the multi-tenant control plane (:mod:`repro.tenancy`).

The load-bearing properties:

* the :class:`BudgetLedger` is durable and crash-safe -- state is a pure
  function of the journal, truncated trailing records are ignored, a broker
  restart sees bit-identical state, and settlement is exactly-once;
* admission control refuses a job whose worst case exceeds its tenant's
  remaining budget *before* anything is queued;
* the :class:`TenantScheduler` claims by strict priority class, fair-shares
  tenants inside a class (a flooding tenant cannot starve anyone), and
  keeps FIFO order within a tenant -- on both queue backends;
* scheduling only reorders execution: every job's merged result stays
  bit-identical to ``run(spec, trials=B, rng=seed, shards=N)``;
* worker heartbeats renew leases, so a long chunk outlives a short lease
  without being retried;
* the capped :class:`DiskResultCache` enforces ``max_bytes`` without
  rescanning the directory on under-cap puts;
* the ``metrics`` / ``tenant-budget`` / ``job-cancel`` CLI verbs report and
  steer all of the above.
"""

import threading
import time

import numpy as np
import pytest

from repro.accounting.budget import BudgetExceededError
from repro.api import AdaptiveSvtSpec, NoisyTopKSpec, run, submit
from repro.dispatch import DiskResultCache
from repro.evaluation.cli import main as cli_main
from repro.service import (
    Broker,
    FileJobQueue,
    JobClient,
    JobFailedError,
    MemoryJobQueue,
    Worker,
)
from repro.tenancy import (
    BudgetLedger,
    LedgerError,
    TenantScheduler,
    collect_metrics,
)

TRIALS = 12
CHUNK = 4  # -> 3 tasks per job


@pytest.fixture()
def top_k_spec():
    return NoisyTopKSpec(
        queries=[120.0, 90.0, 85.0, 30.0, 12.0, 4.0],
        epsilon=1.0,
        k=2,
        monotonic=True,
    )


@pytest.fixture()
def adaptive_spec():
    # Adaptive SVT consumes strictly less than its worst case on typical
    # trials, which is what makes settlement refunds observable.
    return AdaptiveSvtSpec(
        queries=[120.0, 90.0, 85.0, 30.0, 12.0, 4.0],
        epsilon=1.0,
        k=2,
        threshold=50.0,
    )


# ---------------------------------------------------------------------------
# BudgetLedger
# ---------------------------------------------------------------------------


class TestBudgetLedger:
    def test_grant_charge_refund_remaining(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("alice", 2.0)
        assert ledger.total("alice") == 2.0
        assert ledger.remaining("alice") == 2.0
        ledger.charge("alice", 0.75, job_id="j1")
        assert ledger.spent("alice") == pytest.approx(0.75)
        assert ledger.remaining("alice") == pytest.approx(1.25)
        ledger.refund("alice", 0.25, job_id="j1")
        assert ledger.spent("alice") == pytest.approx(0.5)
        # Gross charges are monotone: refunds do not subtract.
        assert ledger.charged("alice") == pytest.approx(0.75)

    def test_overdraft_is_refused_and_journal_untouched(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("alice", 1.0)
        before = ledger.journal_path.read_bytes()
        with pytest.raises(BudgetExceededError, match="alice"):
            ledger.charge("alice", 1.5, job_id="big")
        assert ledger.journal_path.read_bytes() == before
        assert ledger.remaining("alice") == 1.0

    def test_unbudgeted_tenant_is_unbounded_but_recorded(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        assert not ledger.has_budget("drifter")
        ledger.charge("drifter", 123.0)
        assert ledger.remaining("drifter") == float("inf")
        assert ledger.charged("drifter") == 123.0

    def test_exact_budget_fits(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("a", 1.0)
        ledger.charge("a", 1.0)  # == total: allowed
        assert ledger.remaining("a") == 0.0
        with pytest.raises(BudgetExceededError):
            ledger.charge("a", 1e-6)

    def test_state_is_persistent_and_restart_bit_exact(self, tmp_path):
        first = BudgetLedger(tmp_path)
        first.grant("alice", 2.0)
        first.grant("bob", 1.0)
        first.charge("alice", 0.5, job_id="j1")
        first.settle("alice", 0.2, job_id="j1")
        journal = first.journal_path.read_bytes()
        # A fresh instance (a restarted broker) replays to identical state
        # without writing a byte.
        second = BudgetLedger(tmp_path)
        assert second.tenants() == first.tenants()
        assert second.is_settled("j1")
        assert second.journal_path.read_bytes() == journal

    def test_truncated_trailing_record_is_ignored(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("alice", 2.0)
        ledger.charge("alice", 0.5)
        # A writer crashed mid-append: a torn, newline-less trailing record.
        with open(ledger.journal_path, "ab") as journal:
            journal.write(b'{"op": "charge", "tenant": "alice", "epsi')
        replayed = BudgetLedger(tmp_path)
        assert replayed.spent("alice") == pytest.approx(0.5)
        # The next locked write repairs the tail; the torn record stays
        # permanently ignored and the journal keeps working.
        replayed.charge("alice", 0.25)
        final = BudgetLedger(tmp_path)
        assert final.spent("alice") == pytest.approx(0.75)
        assert final.remaining("alice") == pytest.approx(1.25)

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("alice", 2.0)
        with open(ledger.journal_path, "ab") as journal:
            journal.write(b"not json at all\n")
        ledger2 = BudgetLedger(tmp_path)
        ledger2.charge("alice", 1.0)
        assert ledger2.remaining("alice") == pytest.approx(1.0)

    def test_settle_is_exactly_once_across_instances(self, tmp_path):
        a = BudgetLedger(tmp_path)
        b = BudgetLedger(tmp_path)  # a second broker sharing the journal
        a.grant("t", 4.0)
        a.charge("t", 2.0, job_id="job-x")
        assert a.settle("t", 1.5, job_id="job-x") is True
        assert b.settle("t", 1.5, job_id="job-x") is False  # replayed, refused
        assert a.settle("t", 1.5, job_id="job-x") is False
        assert b.spent("t") == pytest.approx(0.5)

    def test_concurrent_charges_from_many_instances(self, tmp_path):
        BudgetLedger(tmp_path).grant("t", 1000.0)
        errors = []

        def hammer():
            try:
                ledger = BudgetLedger(tmp_path)
                for _ in range(10):
                    ledger.charge("t", 1.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert BudgetLedger(tmp_path).spent("t") == pytest.approx(40.0)

    def test_invalid_inputs(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        with pytest.raises(LedgerError):
            ledger.grant("", 1.0)
        with pytest.raises(LedgerError):
            ledger.grant("has space", 1.0)
        with pytest.raises(LedgerError):
            ledger.grant("a/b", 1.0)
        with pytest.raises(LedgerError):
            ledger.grant("t", -1.0)
        with pytest.raises(LedgerError):
            ledger.grant("t", float("inf"))
        with pytest.raises(LedgerError):
            ledger.charge("t", -0.5)

    def test_long_journal_compacts_to_a_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.setattr(BudgetLedger, "COMPACT_EVERY", 10)
        writer = BudgetLedger(tmp_path)
        reader = BudgetLedger(tmp_path)  # holds offsets into the old file
        writer.grant("t", 1000.0)
        reader.refresh()  # reader has replayed the pre-compaction journal
        for index in range(15):
            writer.charge("t", 1.0, job_id=f"j{index}")
            writer.settle("t", 0.5, job_id=f"j{index}")
        # The journal was folded into one snapshot (plus at most the few
        # records appended after the swap), far below the 31 raw records.
        lines = writer.journal_path.read_bytes().splitlines()
        assert len(lines) < 10
        # A compacted journal leads with its generation marker -- what a
        # live reader keys replacement detection on (inodes are reused by
        # the filesystem, so they cannot be) -- then the snapshot.
        assert lines[0].startswith(b'{"gen": "')
        assert b'"snapshot"' in lines[1]
        # A fresh process replays the compacted journal to identical state.
        fresh = BudgetLedger(tmp_path)
        assert fresh.spent("t") == pytest.approx(7.5)
        assert fresh.is_settled("j0") and fresh.is_settled("j14")
        # The pre-compaction reader notices the inode swap and re-anchors.
        assert reader.spent("t") == pytest.approx(7.5)
        assert reader.remaining("t") == pytest.approx(992.5)
        # ...and the journal keeps accepting mutations afterwards.
        fresh.charge("t", 2.0)
        assert writer.spent("t") == pytest.approx(9.5)

    def test_stale_reader_cannot_over_admit_after_compaction(
        self, tmp_path, monkeypatch
    ):
        """Admission control must see post-compaction state even in a
        ledger instance whose offset predates the compaction -- the inode-
        reuse scenario where a stale offset into the replaced journal would
        otherwise enforce stale budgets."""
        monkeypatch.setattr(BudgetLedger, "COMPACT_EVERY", 5)
        stale = BudgetLedger(tmp_path)
        stale.grant("t", 10.0)
        stale.charge("t", 1.0)  # stale's view: spent 1.0 of 10
        other = BudgetLedger(tmp_path)
        for index in range(8):  # crosses COMPACT_EVERY: journal replaced
            other.charge("t", 1.0, job_id=f"j{index}")
        assert b'"gen"' in other.journal_path.read_bytes().splitlines()[0]
        # The stale instance re-anchors on the generation marker: 9.0 spent
        # means an 8.0 charge must be refused, not admitted off spent=1.0.
        with pytest.raises(BudgetExceededError):
            stale.charge("t", 8.0)
        assert stale.spent("t") == pytest.approx(9.0)

    def test_failed_tail_repair_releases_the_locks(self, tmp_path, monkeypatch):
        """An I/O error while repairing a torn tail must release both the
        in-process mutex and the on-disk lock -- a leaked mutex would
        deadlock every later ledger call in the process."""
        import os as os_mod

        ledger = BudgetLedger(tmp_path)
        ledger.grant("t", 5.0)
        with open(ledger.journal_path, "ab") as journal:
            journal.write(b'{"op": "charge"')  # torn tail: repair will run
        fresh = BudgetLedger(tmp_path)
        real_write = os_mod.write

        def failing_write(fd, data):
            if bytes(data) == b"\n":
                raise OSError(28, "No space left on device")
            return real_write(fd, data)

        monkeypatch.setattr(os_mod, "write", failing_write)
        with pytest.raises(OSError, match="No space left"):
            fresh.charge("t", 1.0)
        monkeypatch.undo()
        # Both locks were released: the same instance keeps working.
        fresh.charge("t", 1.0)
        assert fresh.remaining("t") == pytest.approx(4.0)
        assert not fresh._lock_path.exists()

    def test_append_refused_after_lock_break(self, tmp_path):
        """A writer whose lock was stale-broken mid-mutation must refuse to
        append (its admission check is outdated), not overdraft silently."""
        ledger = BudgetLedger(tmp_path)
        ledger.grant("t", 10.0)
        with ledger._locked():
            # A breaker replaced our lock while we were stalled.
            ledger._lock_path.write_text("intruder-token 0\n")
            with pytest.raises(LedgerError, match="lost the ledger lock"):
                ledger._append(ledger._record("charge", "t", 1.0))
        # Release left the foreign lock alone (not ours to remove).
        assert ledger._lock_path.read_text().startswith("intruder-token")
        ledger._lock_path.unlink()
        assert ledger.spent("t") == 0.0  # nothing was journalled

    def test_stale_lock_is_broken(self, tmp_path):
        ledger = BudgetLedger(tmp_path, stale_lock_seconds=0.0)
        # A crashed writer left its lock behind...
        ledger._lock_path.write_text("999999 0\n")
        past = time.time() - 60.0
        import os

        os.utime(ledger._lock_path, (past, past))
        # ...and the next mutation still goes through.
        ledger.grant("t", 1.0)
        assert ledger.total("t") == 1.0


# ---------------------------------------------------------------------------
# TenantScheduler + queue backends
# ---------------------------------------------------------------------------


def _make_queues(tmp_path):
    return [
        MemoryJobQueue(),
        FileJobQueue(tmp_path / "fq"),
    ]


def _drain_ids(queue):
    order = []
    while True:
        claimed = queue.claim()
        if claimed is None:
            return order
        order.append(claimed.task_id)
        queue.ack(claimed.task_id, token=claimed.attempts)


class TestScheduling:
    def test_fifo_within_a_tenant(self, tmp_path):
        for queue in _make_queues(tmp_path):
            for index in range(8):
                queue.put(f"p{index}", task_id=f"t{index}", tenant="a")
            assert _drain_ids(queue) == [f"t{index}" for index in range(8)]

    def test_strict_priority_classes(self, tmp_path):
        for queue in _make_queues(tmp_path):
            queue.put("low", task_id="low-0", priority=0, tenant="a")
            queue.put("low", task_id="low-1", priority=0, tenant="b")
            queue.put("high", task_id="high-0", priority=5, tenant="c")
            queue.put("mid", task_id="mid-0", priority=2, tenant="a")
            order = _drain_ids(queue)
            assert order[0] == "high-0"
            assert order[1] == "mid-0"
            assert set(order[2:]) == {"low-0", "low-1"}

    def test_flooding_tenant_cannot_starve_another(self, tmp_path):
        for queue in _make_queues(tmp_path):
            for index in range(40):
                queue.put("flood", task_id=f"flood-{index:03d}", tenant="hog")
            for index in range(3):
                queue.put("small", task_id=f"small-{index}", tenant="mouse")
            order = _drain_ids(queue)
            # Fair share: the mouse's 3 tasks all finish within the first
            # 2*3 claims despite 40 queued ahead of them.
            assert {f"small-{index}" for index in range(3)} <= set(order[:6])
            # ...and the hog's own tasks stayed FIFO.
            floods = [tid for tid in order if tid.startswith("flood-")]
            assert floods == sorted(floods)

    def test_no_starvation_soak(self, tmp_path):
        # Many tenants with very different loads: every tenant's first task
        # must be claimed within one round of the tenant count.
        queue = FileJobQueue(tmp_path / "soak")
        loads = {"a": 30, "b": 1, "c": 7, "d": 2, "e": 16}
        for tenant, count in loads.items():
            for index in range(count):
                queue.put("x", task_id=f"{tenant}-{index:03d}", tenant=tenant)
        order = _drain_ids(queue)
        assert len(order) == sum(loads.values())
        first_claim = {
            tenant: order.index(f"{tenant}-000") for tenant in loads
        }
        assert max(first_claim.values()) < len(loads)
        # Per tenant, FIFO held.
        for tenant in loads:
            mine = [tid for tid in order if tid.startswith(f"{tenant}-")]
            assert mine == sorted(mine)

    def test_weighted_shares(self):
        queue = MemoryJobQueue(
            scheduler=TenantScheduler(weights={"heavy": 2.0})
        )
        for index in range(20):
            queue.put("x", task_id=f"heavy-{index:02d}", tenant="heavy")
            queue.put("x", task_id=f"light-{index:02d}", tenant="light")
        order = _drain_ids(queue)
        prefix = order[:12]
        heavy = sum(1 for tid in prefix if tid.startswith("heavy"))
        assert heavy == 8  # 2:1 share -> 8 of the first 12

    def test_fifo_scheduler_opt_out(self, tmp_path):
        queue = FileJobQueue(tmp_path / "fifo", scheduler="fifo")
        queue.put("x", task_id="b-task", priority=9, tenant="b")
        queue.put("x", task_id="a-task", priority=0, tenant="a")
        # Plain name-sorted order: priorities are ignored entirely.
        assert _drain_ids(queue) == ["a-task", "b-task"]

    def test_requeued_task_keeps_its_fifo_slot(self, tmp_path):
        queue = FileJobQueue(tmp_path / "rq", max_attempts=3)
        for index in range(3):
            queue.put("x", task_id=f"t{index}", tenant="a")
        claimed = queue.claim()
        assert claimed.task_id == "t0"
        queue.nack(claimed.task_id, "boom", token=claimed.attempts)
        # The retry goes back to the head of its tenant's FIFO.
        assert _drain_ids(queue) == ["t0", "t1", "t2"]


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------


class TestHeartbeats:
    def test_heartbeat_renews_the_lease(self, tmp_path):
        for queue in (
            MemoryJobQueue(lease_seconds=0.3),
            FileJobQueue(tmp_path / "hb", lease_seconds=0.3),
        ):
            queue.put("x", task_id="t0")
            claimed = queue.claim()
            for _ in range(3):
                time.sleep(0.15)
                assert queue.heartbeat("t0", token=claimed.attempts)
                # Well past the original lease by the second beat, yet the
                # reaper never takes the task.
                assert queue.requeue_expired() == []
            # Stop beating: the lease finally expires.
            time.sleep(0.45)
            assert queue.requeue_expired() == ["t0"]

    def test_heartbeat_fencing_and_missing_claims(self, tmp_path):
        queue = FileJobQueue(tmp_path / "hb2", lease_seconds=60.0)
        assert queue.heartbeat("ghost") is False
        queue.put("x", task_id="t0")
        claimed = queue.claim()
        assert queue.heartbeat("t0", token=claimed.attempts + 1) is False
        assert queue.heartbeat("t0", token=claimed.attempts) is True

    def test_long_task_survives_a_short_lease(self, tmp_path, monkeypatch, top_k_spec):
        """A chunk slower than the lease completes exactly once: the
        heartbeat thread keeps the lease alive, so no reaper retries it."""
        import repro.service.worker as worker_mod

        broker = Broker(tmp_path / "svc", lease_seconds=0.4)
        handle = JobClient(broker).submit(
            top_k_spec, trials=4, seed=3, chunk_trials=4
        )
        real_execute = worker_mod.execute_task_json

        def slow_execute(payload):
            time.sleep(1.0)  # 2.5x the lease
            return real_execute(payload)

        monkeypatch.setattr(worker_mod, "execute_task_json", slow_execute)
        worker = Worker(broker, heartbeat_seconds=0.1, poll_interval=0.01)
        worker.run_until_idle()
        assert worker.heartbeats >= 2
        assert worker.tasks_done == 1
        assert worker.failures == 0
        status = handle.status()
        assert status.state == "done"
        # And the slow result is still the deterministic one.
        reference = run(top_k_spec, trials=4, rng=3, shards=1, chunk_trials=4)
        merged = handle.result()
        np.testing.assert_array_equal(merged.indices, reference.indices)

    def test_heartbeats_disabled_by_zero(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc", lease_seconds=300.0)
        worker = Worker(broker, heartbeat_seconds=0)
        JobClient(broker).submit(top_k_spec, trials=4, seed=0, chunk_trials=4)
        worker.run_until_idle()
        assert worker.heartbeats == 0
        assert worker.tasks_done == 1


# ---------------------------------------------------------------------------
# DiskResultCache O(1) size accounting
# ---------------------------------------------------------------------------


class TestCacheSizeAccounting:
    def _result(self, spec, seed):
        return run(spec, trials=4, rng=seed)

    def test_running_total_matches_scan(self, tmp_path, top_k_spec):
        cache = DiskResultCache(tmp_path / "c", max_bytes=10**9)
        cache.size_bytes()  # establish the running total
        for seed in range(5):
            cache.put(f"k{seed}", self._result(top_k_spec, seed))
        running = cache._total_bytes()
        assert running == sum(
            p.stat().st_size
            for p in (tmp_path / "c").iterdir()
            if p.suffix in (".json", ".npz")
        )
        cache.evict("k0")
        assert cache._total_bytes() == cache.size_bytes()

    def test_under_cap_put_never_rescans(self, tmp_path, top_k_spec, monkeypatch):
        cache = DiskResultCache(tmp_path / "c", max_bytes=10**9)
        cache.put("k0", self._result(top_k_spec, 0))  # anchors via scan/sidecar
        cache.size_bytes()
        scans = {"n": 0}
        real_entries = DiskResultCache._entries

        def counting_entries(self):
            scans["n"] += 1
            return real_entries(self)

        monkeypatch.setattr(DiskResultCache, "_entries", counting_entries)
        for seed in range(1, 6):
            cache.put(f"k{seed}", self._result(top_k_spec, seed))
        assert scans["n"] == 0  # the O(1) fast path: no directory scans

    def test_sidecar_warm_start(self, tmp_path, top_k_spec):
        first = DiskResultCache(tmp_path / "c", max_bytes=10**9)
        first.put("k0", self._result(top_k_spec, 0))
        total = first.size_bytes()  # persists the sidecar index
        second = DiskResultCache(tmp_path / "c", max_bytes=10**9)
        assert second._total_bytes() == total  # read from ".size", no scan
        # The sidecar never collides with entry globs.
        assert ".size" not in {p.stem for p in (tmp_path / "c").glob("*.json")}

    def test_eviction_still_enforces_the_cap(self, tmp_path, top_k_spec):
        sample = self._result(top_k_spec, 0)
        cache = DiskResultCache(tmp_path / "c")
        cache.put("probe", sample)
        entry_bytes = cache.size_bytes()
        capped = DiskResultCache(tmp_path / "d", max_bytes=int(entry_bytes * 2.5))
        for seed in range(6):
            capped.put(f"k{seed}", self._result(top_k_spec, seed))
            time.sleep(0.01)  # distinct mtimes for deterministic LRU order
        assert capped.size_bytes() <= entry_bytes * 2.5
        assert capped.get("k5") is not None  # the newest entry survived


# ---------------------------------------------------------------------------
# End-to-end: admission, fair progress, settlement, restart, determinism
# ---------------------------------------------------------------------------


class TestControlPlaneEndToEnd:
    def test_overbudget_submit_is_rejected_before_queueing(
        self, tmp_path, top_k_spec
    ):
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("bob", 5.0)
        with pytest.raises(BudgetExceededError, match="bob"):
            broker.submit(
                top_k_spec, trials=6, seed=0, tenant="bob"
            )  # worst case 6.0 > 5.0
        assert broker.queue.counts() == {"pending": 0, "claimed": 0, "failed": 0}
        assert broker.list_jobs() == []
        assert broker.ledger.remaining("bob") == 5.0

    def test_flooding_tenant_cannot_starve_another_end_to_end(
        self, tmp_path, top_k_spec
    ):
        """Two tenants, one worker: the hog floods 4 jobs before the mouse
        submits one, yet the mouse's job finishes first -- and every job's
        result is still bit-identical to the in-process sharded run."""
        broker = Broker(tmp_path / "svc")
        client = JobClient(broker)
        hog_handles = [
            client.submit(
                top_k_spec,
                trials=TRIALS,
                seed=seed,
                chunk_trials=CHUNK,
                tenant="hog",
            )
            for seed in range(4)
        ]
        mouse = client.submit(
            top_k_spec, trials=TRIALS, seed=99, chunk_trials=CHUNK,
            tenant="mouse",
        )
        worker = Worker(broker, poll_interval=0.001)
        steps = 0
        while mouse.status().state != "done":
            assert worker.run_once(), "queue drained before the mouse finished"
            steps += 1
        # The mouse needed 3 chunks; fair sharing means it never waits for
        # the hog's 12 queued chunks -- about one hog chunk per mouse chunk.
        assert steps <= 2 * 3 + 1
        assert any(h.status().state != "done" for h in hog_handles)
        worker.run_until_idle()
        for seed, handle in enumerate(hog_handles):
            reference = run(
                top_k_spec, trials=TRIALS, rng=seed, shards=2,
                chunk_trials=CHUNK,
            )
            merged = handle.result()
            np.testing.assert_array_equal(merged.indices, reference.indices)
            np.testing.assert_array_equal(merged.gaps, reference.gaps)
            np.testing.assert_array_equal(
                merged.epsilon_consumed, reference.epsilon_consumed
            )

    def test_settlement_refunds_unused_reservation(self, tmp_path, adaptive_spec):
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("alice", 100.0)
        handle = JobClient(broker).submit(
            adaptive_spec, trials=TRIALS, seed=5, chunk_trials=CHUNK,
            tenant="alice",
        )
        reserved = float(adaptive_spec.epsilon) * TRIALS
        assert broker.ledger.spent("alice") == pytest.approx(reserved)
        Worker(broker).run_until_idle()
        merged = handle.result()
        consumed = float(np.sum(merged.epsilon_consumed))
        assert consumed < reserved  # adaptive SVT leaves budget on the table
        assert broker.ledger.spent("alice") == pytest.approx(consumed)
        # Settlement is exactly-once: repeated fetches change nothing.
        handle.result()
        handle.result()
        assert broker.ledger.spent("alice") == pytest.approx(consumed)

    def test_cancel_refunds_never_ran_chunks(self, tmp_path, top_k_spec):
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("alice", 50.0)
        handle = JobClient(broker).submit(
            top_k_spec, trials=TRIALS, seed=1, chunk_trials=CHUNK,
            tenant="alice",
        )
        assert broker.ledger.spent("alice") == pytest.approx(float(TRIALS))
        handle.cancel()  # nothing ran: the whole reservation comes back
        assert broker.ledger.spent("alice") == pytest.approx(0.0)
        with pytest.raises(JobFailedError):
            handle.result()

    def test_over_refund_clamps_at_zero(self, tmp_path):
        ledger = BudgetLedger(tmp_path)
        ledger.grant("t", 10.0)
        ledger.charge("t", 4.0)
        ledger.refund("t", 8.0)  # an operator repairing too enthusiastically
        ledger.refund("t", 8.0)
        assert ledger.spent("t") == 0.0
        assert ledger.remaining("t") == 10.0  # never inflated past the grant
        with pytest.raises(BudgetExceededError):
            ledger.charge("t", 10.5)

    def test_cancel_does_not_refund_a_retried_chunk(self, tmp_path, top_k_spec):
        """A chunk that executed once and was nacked back to pending drew
        its noise: cancelling must keep its budget spent, even though the
        task sits in the pending queue at cancel time."""
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("alice", 50.0)
        handle = JobClient(broker).submit(
            top_k_spec, trials=TRIALS, seed=4, chunk_trials=CHUNK,
            tenant="alice",
        )
        claimed = broker.queue.claim()
        assert broker.queue.nack(
            claimed.task_id, "transient", token=claimed.attempts
        ) == "requeued"
        handle.cancel()
        # 3 chunks of 4 trials: two never ran (refunded), the nacked one
        # already drew noise and stays charged at its worst case.
        assert broker.ledger.spent("alice") == pytest.approx(4.0)

    def test_crashed_submit_refunds_its_reservation(
        self, tmp_path, top_k_spec, monkeypatch
    ):
        broker = Broker(tmp_path / "svc")
        broker.ledger.grant("alice", 50.0)
        real_put = type(broker.queue).put
        calls = {"n": 0}

        def dying_put(self, payload, *, task_id=None, **kwargs):
            if calls["n"] >= 1:
                raise OSError("disk full")
            calls["n"] += 1
            return real_put(self, payload, task_id=task_id, **kwargs)

        monkeypatch.setattr(type(broker.queue), "put", dying_put)
        with pytest.raises(OSError, match="disk full"):
            broker.submit(
                top_k_spec, trials=TRIALS, seed=0, chunk_trials=CHUNK,
                tenant="alice",
            )
        # The compensating refund landed: the ledger is balanced again.
        assert broker.ledger.spent("alice") == pytest.approx(0.0)
        assert broker.ledger.remaining("alice") == pytest.approx(50.0)

    def test_tenant_budget_cli_manual_refund(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert cli_main(
            ["tenant-budget", "t", "--root", str(root), "--grant", "10"]
        ) == 0
        BudgetLedger(root / "tenants").charge("t", 4.0, job_id="leaked")
        capsys.readouterr()
        assert cli_main(
            ["tenant-budget", "t", "--root", str(root), "--refund", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "remaining 10" in out

    def test_ledger_survives_broker_restart_bit_exactly(
        self, tmp_path, top_k_spec
    ):
        root = tmp_path / "svc"
        broker = Broker(root)
        broker.ledger.grant("alice", 30.0)
        JobClient(broker).submit(
            top_k_spec, trials=TRIALS, seed=2, chunk_trials=CHUNK,
            tenant="alice",
        )
        journal = broker.ledger.journal_path.read_bytes()
        snapshot = broker.ledger.tenants()
        del broker
        rebooted = Broker(root)  # a fresh process over the same root
        assert rebooted.ledger.journal_path.read_bytes() == journal
        assert rebooted.ledger.tenants() == snapshot
        # ...and enforcement continues where it left off.
        with pytest.raises(BudgetExceededError):
            rebooted.submit(
                top_k_spec, trials=19, seed=3, tenant="alice"
            )  # 19 > 30 - 12 remaining

    def test_submit_facade_carries_tenant_and_priority(
        self, tmp_path, top_k_spec
    ):
        handle = submit(
            top_k_spec,
            root=tmp_path / "svc",
            trials=TRIALS,
            rng=0,
            chunk_trials=CHUNK,
            tenant="alice",
            priority=7,
        )
        manifest = handle.client.broker.manifest(handle.job_id)
        assert manifest["tenant"] == "alice"
        assert manifest["priority"] == 7
        assert manifest["reserved_epsilon"] == pytest.approx(float(TRIALS))

    def test_metrics_cli_reports_the_run(self, tmp_path, top_k_spec, capsys):
        root = tmp_path / "svc"
        assert cli_main(
            ["tenant-budget", "alice", "--root", str(root), "--grant", "30"]
        ) == 0
        broker = Broker(root)
        client = JobClient(broker)
        handle = client.submit(
            top_k_spec, trials=TRIALS, seed=0, chunk_trials=CHUNK,
            tenant="alice",
        )
        # Same request twice: the second job's chunks are all cache hits.
        rerun = client.submit(
            top_k_spec, trials=TRIALS, seed=0, chunk_trials=CHUNK,
            tenant="alice", job_id="job-warm",
        )
        worker = Worker(broker)
        worker.run_until_idle()
        handle.result()
        rerun.result()
        snapshot = collect_metrics(root)
        assert snapshot["queue"] == {
            "pending": 0, "claimed": 0, "failed": 0, "pending_by_tenant": {},
        }
        assert snapshot["jobs"] == {"done": 2}
        assert snapshot["cache"]["hits"] == 3
        assert snapshot["cache"]["misses"] == 3
        assert snapshot["cache"]["hit_rate"] == pytest.approx(0.5)
        alice = snapshot["tenants"]["alice"]
        assert alice["total"] == 30.0
        assert alice["charged"] == pytest.approx(2.0 * TRIALS)
        # Both jobs settled at the identical (replayed) consumption.
        assert alice["spent"] == pytest.approx(2.0 * TRIALS)
        capsys.readouterr()
        assert cli_main(["metrics", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "pending 0  claimed 0  failed 0" in out
        assert "done 2" in out
        assert "hit_rate 50.0%" in out
        assert "alice" in out

    def test_metrics_cli_missing_root_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["metrics", "--root", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_job_cancel_cli(self, tmp_path, top_k_spec, capsys):
        root = tmp_path / "svc"
        handle = JobClient(root).submit(
            top_k_spec, trials=TRIALS, seed=0, chunk_trials=CHUNK
        )
        assert cli_main(["job-cancel", handle.job_id, "--root", str(root)]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert handle.status().state == "cancelled"

    def test_job_cancel_cli_unknown_job_exits_2(self, tmp_path, capsys):
        Broker(tmp_path / "svc")  # a root with no such job
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["job-cancel", "job-nope", "--root", str(tmp_path / "svc")])
        assert excinfo.value.code == 2
        assert "no job" in capsys.readouterr().err

    def test_overbudget_submit_cli_exits_2(self, tmp_path, top_k_spec, capsys):
        root = tmp_path / "svc"
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(top_k_spec.to_json())
        assert cli_main(
            ["tenant-budget", "alice", "--root", str(root), "--grant", "0.5"]
        ) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "submit", str(spec_file), "--root", str(root),
                    "--trials", "8", "--seed", "0", "--tenant", "alice",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "alice" in err and "remaining" in err
